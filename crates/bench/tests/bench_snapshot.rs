//! The committed `BENCH_*.json` snapshots must stay readable: CI and the
//! next session both diff against them, so a malformed or truncated
//! snapshot is a broken baseline. Validates every snapshot at the repo
//! root with the same checker the CI smoke job runs.

use pgr_bench::harness::check_bench_json;
use std::path::Path;

#[test]
fn committed_bench_snapshots_validate() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut found = 0;
    for entry in std::fs::read_dir(&root).expect("repo root is readable") {
        let path = entry.expect("dir entry").path();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        if !(name.starts_with("BENCH_") && name.ends_with(".json")) {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("snapshot is readable");
        let kernels = check_bench_json(&text, 3)
            .unwrap_or_else(|e| panic!("{name} fails schema validation: {e}"));
        found += 1;
        // The snapshots exist to watch specific hot kernels across PRs;
        // losing one of these names silently would defeat that.
        for want in [
            "density_profile/counts_into/4096",
            "coarse_eval/improve_slice/512",
            "wire_encode_1k_records",
        ] {
            assert!(
                kernels.iter().any(|k| k == want),
                "{name} lost the '{want}' kernel"
            );
        }
    }
    assert!(found >= 1, "no BENCH_*.json snapshot at the repo root");
}
