//! Hot paths that must not allocate: the metrics API when metrics are
//! off (a disabled shard is one branch, no bookkeeping) and the density
//! profile's read path (the eval loops query it per candidate, so a
//! single allocation there multiplies by every span of every sweep).
//! This runs as a harness-less test (`harness = false` in Cargo.toml):
//! the libtest harness spawns helper threads whose own allocations would
//! race the process-wide counter, so the check must be the only thread
//! alive.

use pgr_geom::DensityProfile;
use pgr_mpi::{Comm, MachineModel, Phase};
use pgr_obs::MetricsConfig;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct Counting;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: Counting = Counting;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

// One scenario, plain `main`: disabled path, enabled first touch,
// enabled steady state.
fn main() {
    // Sanity: the counting hook actually fires.
    let before = allocs();
    let v = std::hint::black_box(vec![1u8, 2, 3]);
    assert!(allocs() > before, "counting allocator must observe allocs");
    drop(v);

    let mut comm = Comm::solo(MachineModel::ideal());
    assert!(!comm.metrics_enabled(), "solo comm has metrics off");

    let before = allocs();
    for i in 0..10_000u64 {
        comm.metric_window_open(Phase::ALL[(i % Phase::ALL.len() as u64) as usize]);
        comm.metric_add("bench.alloc.counter", 1);
        comm.metric_observe("bench.alloc.hist", i);
        comm.metric_gauge("bench.alloc.gauge", i as f64);
        comm.metric_window_close();
    }
    assert_eq!(
        allocs(),
        before,
        "disabled metrics must not allocate on add/observe/gauge/window"
    );

    // Contrast: the enabled path does allocate on first touch (name
    // registration) — proving the zero above is the branch, not a
    // miscounting hook.
    let mut comm = Comm::solo_instrumented(MachineModel::ideal(), MetricsConfig::on());
    assert!(comm.metrics_enabled());
    let before = allocs();
    comm.metric_add("bench.alloc.counter", 1);
    comm.metric_observe("bench.alloc.hist", 1);
    assert!(allocs() > before, "enabled first touch registers names");

    // First touch of each phase window allocates its store and the
    // per-window name slots...
    for phase in Phase::ALL {
        comm.metric_window_open(phase);
        comm.metric_add("bench.alloc.counter", 1);
        comm.metric_observe("bench.alloc.hist", 1);
    }

    // ...then steady state on the enabled path is allocation-free too,
    // even while rotating windows: repeat updates to registered names
    // only bump in-place slots, and re-opening a window is index lookup.
    let before = allocs();
    for i in 0..10_000u64 {
        comm.metric_window_open(Phase::ALL[(i % Phase::ALL.len() as u64) as usize]);
        comm.metric_add("bench.alloc.counter", 1);
        comm.metric_observe("bench.alloc.hist", i);
    }
    comm.metric_window_close();
    assert_eq!(allocs(), before, "steady-state updates must not allocate");

    // The density profile's read path: `counts()` allocates a fresh
    // vector per call, `counts_into` fills a caller-owned buffer — along
    // with the point/range queries it must stay allocation-free no
    // matter how the lazy tree has been exercised.
    let mut p = DensityProfile::new(4096);
    for i in 0..500i64 {
        p.add_span((i * 7) % 4000, (i * 7) % 4000 + 60, 1);
    }
    let mut out = vec![0i64; p.width()];
    p.counts_into(&mut out); // warm: flush any one-time laziness
    let before = allocs();
    for i in 0..1_000i64 {
        p.add_span((i * 11) % 4000, (i * 11) % 4000 + 30, 1);
        std::hint::black_box(p.max());
        std::hint::black_box(p.max_in(i % 4000, i % 4000 + 90));
        std::hint::black_box(p.max_if_added(i % 4000, i % 4000 + 90));
        std::hint::black_box(p.at((i % 4096) as usize));
        p.counts_into(&mut out);
        std::hint::black_box(out[2048]);
        p.add_span((i * 11) % 4000, (i * 11) % 4000 + 30, -1);
    }
    assert_eq!(
        allocs(),
        before,
        "density profile reads and updates must not allocate"
    );
}
