//! Aggregator integration tests: hand-built fixture dumps through
//! [`load_paths`] / [`aggregate`] / [`check_baseline`], plus a full
//! round trip proving the artifacts `--trace-out` writes are accepted
//! back by `repro aggregate`.

use pgr_bench::aggregate::{aggregate, check_baseline, load_paths};
use pgr_bench::tables::write_traces;
use pgr_circuit::mcnc::Mcnc;
use pgr_mpi::{run_instrumented, InstrumentConfig, MachineModel, RunMeta};
use pgr_obs::{metrics_json, RankMetrics, SCHEMA_VERSION};
use pgr_router::{
    route_parallel_instrumented, route_serial, Algorithm, PartitionKind, RouterConfig,
};
use std::path::PathBuf;

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("pgr-agg-test-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn meta(algorithm: &str, procs: usize) -> RunMeta {
    RunMeta {
        circuit: "fixture".into(),
        algorithm: algorithm.into(),
        procs,
        machine: "TestBox".into(),
        scale: 1.0,
        seed: 7,
        degraded: false,
        clock: "virtual".into(),
        scenario: String::new(),
        budget_degraded: false,
    }
}

/// Hand-built stats dump with a chosen makespan (one rank, one phase).
fn stats_fixture(run: &RunMeta, makespan: f64) -> String {
    format!(
        "{{\"schema_version\":{SCHEMA_VERSION},\"kind\":\"stats\",\"run\":{},\
         \"machine\":\"TestBox\",\"makespan\":{makespan},\"ranks\":[\
         {{\"rank\":0,\"time\":{makespan},\"ops\":1,\"msgs_sent\":0,\
         \"bytes_sent\":64,\"peak_mem\":0,\
         \"phases\":[{{\"name\":\"setup\",\"seconds\":{makespan}}}]}}]}}",
        run.to_json()
    )
}

/// Hand-built metrics dump carrying a tracks counter.
fn metrics_fixture(run: &RunMeta, tracks: u64) -> String {
    let mut m = RankMetrics::empty(0);
    m.counters.push(("route.tracks".into(), tracks));
    metrics_json(run, &[m])
}

fn write(dir: &std::path::Path, name: &str, text: &str) {
    std::fs::write(dir.join(name), text).unwrap();
}

#[test]
fn speedup_and_quality_from_hand_built_fixtures() {
    let dir = tmp_dir("speedup");
    let serial = meta("serial", 1);
    let par = meta("row-wise", 4);
    write(&dir, "serial.stats.json", &stats_fixture(&serial, 10.0));
    write(&dir, "serial.metrics.json", &metrics_fixture(&serial, 100));
    write(&dir, "par.stats.json", &stats_fixture(&par, 2.5));
    write(&dir, "par.metrics.json", &metrics_fixture(&par, 110));

    let records = load_paths(std::slice::from_ref(&dir)).unwrap();
    assert_eq!(records.len(), 2, "two distinct run identities");
    let agg = aggregate(&records);
    let row = |a: &str| {
        agg.records
            .iter()
            .find(|r| r.run.algorithm == a)
            .unwrap()
            .clone()
    };
    let s = row("serial");
    assert_eq!(s.speedup, Some(1.0));
    assert_eq!(s.scaled_tracks, Some(1.0));
    let p = row("row-wise");
    assert_eq!(p.makespan, Some(2.5));
    assert_eq!(p.speedup, Some(4.0), "10.0 / 2.5");
    assert_eq!(p.tracks, Some(110));
    assert_eq!(p.scaled_tracks, Some(1.1));
    assert_eq!(p.bytes_sent, 64);
    assert_eq!(p.phases.len(), 1);
    assert_eq!(p.phases[0].name, "setup");
    assert_eq!(p.phases[0].seconds, Some(2.5));

    // The markdown report names the series and carries both numbers.
    let md = agg.to_markdown();
    assert!(md.contains("fixture — TestBox"), "{md}");
    assert!(md.contains("4.00"), "{md}");
    assert!(md.contains("1.10"), "{md}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn load_is_deterministic_regardless_of_argument_order() {
    let dir_a = tmp_dir("det-a");
    let dir_b = tmp_dir("det-b");
    let serial = meta("serial", 1);
    let par = meta("net-wise", 2);
    write(&dir_a, "s.stats.json", &stats_fixture(&serial, 8.0));
    write(&dir_a, "s.metrics.json", &metrics_fixture(&serial, 50));
    write(&dir_b, "p.stats.json", &stats_fixture(&par, 4.0));
    write(&dir_b, "p.metrics.json", &metrics_fixture(&par, 55));

    let ab = aggregate(&load_paths(&[dir_a.clone(), dir_b.clone()]).unwrap());
    let ba = aggregate(&load_paths(&[dir_b.clone(), dir_a.clone()]).unwrap());
    assert_eq!(ab.to_json(), ba.to_json(), "argument order must not matter");
    std::fs::remove_dir_all(&dir_a).ok();
    std::fs::remove_dir_all(&dir_b).ok();
}

#[test]
fn unparseable_and_mismatched_schema_are_rejected_by_name() {
    let dir = tmp_dir("reject");
    write(&dir, "bad.stats.json", "{ not json");
    let err = load_paths(std::slice::from_ref(&dir)).unwrap_err();
    assert!(err.contains("bad.stats.json"), "{err}");
    assert!(err.contains("unparseable"), "{err}");

    std::fs::remove_file(dir.join("bad.stats.json")).unwrap();
    let future = stats_fixture(&meta("serial", 1), 1.0).replace(
        &format!("\"schema_version\":{SCHEMA_VERSION}"),
        "\"schema_version\":999",
    );
    write(&dir, "future.stats.json", &future);
    let err = load_paths(std::slice::from_ref(&dir)).unwrap_err();
    assert!(err.contains("future.stats.json"), "{err}");
    assert!(err.contains("schema_version 999"), "{err}");

    std::fs::remove_file(dir.join("future.stats.json")).unwrap();
    write(
        &dir,
        "odd.stats.json",
        &format!("{{\"schema_version\":{SCHEMA_VERSION},\"kind\":\"nope\",\"run\":{{}}}}"),
    );
    let err = load_paths(std::slice::from_ref(&dir)).unwrap_err();
    assert!(err.contains("odd.stats.json"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn phases_outside_the_registry_are_rejected_by_name() {
    // A dump naming a phase the registry does not know comes from a
    // pipeline that bypassed the engine; aggregating it would emit trend
    // series nothing can align with.
    let dir = tmp_dir("registry");
    let bad_stats = stats_fixture(&meta("serial", 1), 1.0).replace("\"setup\"", "\"warmup\"");
    write(&dir, "s.stats.json", &bad_stats);
    let err = load_paths(std::slice::from_ref(&dir)).unwrap_err();
    assert!(err.contains("warmup"), "{err}");
    assert!(err.contains("phase registry"), "{err}");

    std::fs::remove_file(dir.join("s.stats.json")).unwrap();
    let mut m = RankMetrics::empty(0);
    m.counters.push(("route.tracks".into(), 5));
    m.windows.push(("bogus".into(), RankMetrics::empty(0)));
    write(
        &dir,
        "m.metrics.json",
        &metrics_json(&meta("serial", 1), &[m]),
    );
    let err = load_paths(std::slice::from_ref(&dir)).unwrap_err();
    assert!(err.contains("bogus"), "{err}");
    assert!(err.contains("phase registry"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn phase_windows_round_trip_and_gate_against_the_baseline() {
    let dir = tmp_dir("phase-gate");
    let run = meta("row-wise", 4);
    let mut m = RankMetrics::empty(0);
    m.counters.push(("route.wirelength".into(), 1000));
    let mut w = RankMetrics::empty(0);
    w.counters.push(("route.wirelength".into(), 1000));
    m.windows.push(("connect".into(), w));
    write(&dir, "p.metrics.json", &metrics_json(&run, &[m]));
    write(&dir, "p.stats.json", &stats_fixture(&run, 2.0));

    let agg = aggregate(&load_paths(std::slice::from_ref(&dir)).unwrap());
    let rec = &agg.records[0];
    let connect = rec.phases.iter().find(|p| p.name == "connect").unwrap();
    assert_eq!(
        connect.counters,
        vec![("route.wirelength".to_string(), 1000)],
        "window counters survive the JSON round trip"
    );
    assert!(
        agg.to_json().contains("\"name\":\"connect\""),
        "per-phase series emitted"
    );

    // Self-comparison is clean; a baseline that expected a cheaper
    // connect phase flags a per-phase regression even though no total
    // moved.
    assert_eq!(check_baseline(&agg, &agg.to_json(), 0.0).unwrap(), vec![]);
    let tighter = agg
        .to_json()
        .replace("\"route.wirelength\":1000", "\"route.wirelength\":800");
    let regs = check_baseline(&agg, &tighter, 0.02).unwrap();
    assert!(
        regs.iter()
            .any(|r| r.what.contains("phase connect wirelength")),
        "{regs:?}"
    );
    let slower = agg.to_json().replace(
        "\"name\":\"setup\",\"seconds\":2",
        "\"name\":\"setup\",\"seconds\":1",
    );
    let regs = check_baseline(&agg, &slower, 0.02).unwrap();
    assert!(
        regs.iter().any(|r| r.what.contains("phase setup seconds")),
        "{regs:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn wait_fraction_and_phase_wait_series_derive_and_gate() {
    let dir = tmp_dir("wait");
    let run = meta("hybrid", 4);
    // 2.0 rank-seconds blocked out of 4 ranks × 2.5 s makespan = 20 %,
    // 1.5 s of it inside the connect window.
    let mut m = RankMetrics::empty(0);
    m.counters.push(("mpi.recv_wait_micros".into(), 2_000_000));
    let mut w = RankMetrics::empty(0);
    w.counters.push(("mpi.recv_wait_micros".into(), 1_500_000));
    m.windows.push(("connect".into(), w));
    write(&dir, "p.metrics.json", &metrics_json(&run, &[m]));
    write(&dir, "p.stats.json", &stats_fixture(&run, 2.5));

    let agg = aggregate(&load_paths(std::slice::from_ref(&dir)).unwrap());
    let rec = &agg.records[0];
    assert_eq!(rec.wait_fraction, Some(0.2));
    let connect = rec.phases.iter().find(|p| p.name == "connect").unwrap();
    assert_eq!(connect.wait_seconds, Some(1.5));
    // A phase with stats seconds but no metrics window carries no wait
    // number rather than a fabricated zero.
    let setup = rec.phases.iter().find(|p| p.name == "setup").unwrap();
    assert_eq!(setup.wait_seconds, None);
    let json = agg.to_json();
    assert!(json.contains("\"wait_fraction\":0.2"), "{json}");
    assert!(json.contains("\"wait_seconds\":1.5"), "{json}");
    let md = agg.to_markdown();
    assert!(md.contains("wait %"), "{md}");
    assert!(md.contains("20.0"), "{md}");

    // Self-comparison stays clean; a baseline that waited less (or was
    // better balanced) flags the efficiency regression.
    assert_eq!(check_baseline(&agg, &json, 0.0).unwrap(), vec![]);
    let better = json.replace("\"wait_fraction\":0.2", "\"wait_fraction\":0.1");
    let regs = check_baseline(&agg, &better, 0.02).unwrap();
    assert!(
        regs.iter().any(|r| r.what.contains("wait_fraction")),
        "{regs:?}"
    );
    let better_phase = json.replace("\"wait_seconds\":1.5", "\"wait_seconds\":1.2");
    let regs = check_baseline(&agg, &better_phase, 0.02).unwrap();
    assert!(
        regs.iter()
            .any(|r| r.what.contains("phase connect wait seconds")),
        "{regs:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn baseline_check_passes_on_self_and_flags_injected_regression() {
    let dir = tmp_dir("baseline");
    let serial = meta("serial", 1);
    let par = meta("hybrid", 4);
    write(&dir, "s.stats.json", &stats_fixture(&serial, 10.0));
    write(&dir, "s.metrics.json", &metrics_fixture(&serial, 100));
    write(&dir, "p.stats.json", &stats_fixture(&par, 3.0));
    write(&dir, "p.metrics.json", &metrics_fixture(&par, 104));
    let agg = aggregate(&load_paths(std::slice::from_ref(&dir)).unwrap());

    // Pass path: an aggregate never regresses against itself.
    assert_eq!(check_baseline(&agg, &agg.to_json(), 0.0).unwrap(), vec![]);

    // Fail path: a baseline whose hybrid makespan was 20 % faster.
    let tighter = agg
        .to_json()
        .replace("\"makespan\":3,", "\"makespan\":2.5,");
    let regs = check_baseline(&agg, &tighter, 0.02).unwrap();
    assert_eq!(regs.len(), 1, "{regs:?}");
    assert_eq!(regs[0].run.algorithm, "hybrid");
    assert!(regs[0].what.contains("makespan"), "{}", regs[0].what);

    // Tolerance wide enough swallows the same delta.
    assert_eq!(check_baseline(&agg, &tighter, 0.25).unwrap(), vec![]);

    // Quality regression: baseline expected fewer tracks.
    let fewer = agg.to_json().replace("\"tracks\":104,", "\"tracks\":90,");
    let regs = check_baseline(&agg, &fewer, 0.02).unwrap();
    assert!(regs.iter().any(|r| r.what.contains("tracks")), "{regs:?}");

    // A baseline run missing from the fresh aggregate is itself a
    // regression (a silently dropped benchmark must not pass CI).
    let extra = meta("net-wise", 8);
    let missing = agg.to_json().replace(
        "\"records\":[\n",
        &format!(
            "\"records\":[\n{{\"run\":{},\"makespan\":1.0,\"speedup\":null,\
             \"tracks\":null,\"scaled_tracks\":null,\"wirelength\":null,\
             \"feedthroughs\":null,\"load_imbalance\":null,\"bytes_sent\":0,\
             \"phases\":[]}},\n",
            extra.to_json()
        ),
    );
    let regs = check_baseline(&agg, &missing, 0.02).unwrap();
    assert!(
        regs.iter()
            .any(|r| r.run.algorithm == "net-wise" && r.what.contains("missing")),
        "{regs:?}"
    );

    // An unusable baseline is an error, not an empty regression list.
    assert!(check_baseline(&agg, "{ nope", 0.02).is_err());
    assert!(check_baseline(
        &agg,
        "{\"schema_version\":999,\"kind\":\"aggregate\"}",
        0.02
    )
    .is_err());
    std::fs::remove_dir_all(&dir).ok();
}

/// Full round trip: two independent instrumented runs (a serial one and
/// a parallel one) written through the same `write_traces` path that
/// `repro --trace-out` uses, then merged by the aggregator into a
/// speedup report.
#[test]
fn trace_out_artifacts_round_trip_through_aggregate() {
    let dir_serial = tmp_dir("rt-serial");
    let dir_par = tmp_dir("rt-par");
    let machine = MachineModel::sparc_center_1000();
    let cfg = RouterConfig::default();

    let circuit = Mcnc::Primary2.circuit_scaled(0.05);
    let (report, traces, metrics) =
        run_instrumented(1, machine, InstrumentConfig::full(), move |comm| {
            route_serial(&circuit, &cfg, comm);
        });
    let run = RunMeta {
        circuit: "primary2".into(),
        algorithm: "serial".into(),
        procs: 1,
        machine: machine.name.into(),
        scale: 0.05,
        seed: 0,
        degraded: false,
        clock: "virtual".into(),
        scenario: String::new(),
        budget_degraded: false,
    };
    write_traces(
        &dir_serial,
        "primary2_serial",
        &traces,
        &report.stats,
        &machine,
        &run,
        &metrics,
    )
    .unwrap();

    let circuit = Mcnc::Primary2.circuit_scaled(0.05);
    let cfg = RouterConfig::default();
    let procs = 4.min(circuit.num_rows());
    let out = route_parallel_instrumented(
        &circuit,
        &cfg,
        Algorithm::RowWise,
        PartitionKind::PinWeight,
        procs,
        machine,
        InstrumentConfig::full(),
    );
    let run = RunMeta {
        algorithm: "row-wise".into(),
        procs: out.stats.len(),
        ..run
    };
    write_traces(
        &dir_par,
        "primary2_row-wise_p4",
        &out.traces,
        &out.stats,
        &machine,
        &run,
        &out.metrics,
    )
    .unwrap();

    let records = load_paths(&[dir_serial.clone(), dir_par.clone()]).unwrap();
    assert_eq!(records.len(), 2, "two independent runs merged");
    let agg = aggregate(&records);
    let par = agg
        .records
        .iter()
        .find(|r| r.run.algorithm == "row-wise")
        .unwrap();
    assert!(par.speedup.is_some(), "speedup derived across runs");
    assert!(par.speedup.unwrap() > 0.0);
    assert_eq!(par.tracks, Some(out.result.track_count().max(0) as u64));
    assert!(par.load_imbalance.is_some_and(|x| x >= 1.0));
    assert!(!par.phases.is_empty(), "phase trend carried through");
    let serial = agg
        .records
        .iter()
        .find(|r| r.run.algorithm == "serial")
        .unwrap();
    assert_eq!(serial.speedup, Some(1.0));

    // And the aggregate gates cleanly against itself.
    assert_eq!(check_baseline(&agg, &agg.to_json(), 0.0).unwrap(), vec![]);
    std::fs::remove_dir_all(&dir_serial).ok();
    std::fs::remove_dir_all(&dir_par).ok();
}
