//! End-to-end check of the tracing exporters: a traced parallel route's
//! Chrome-trace phase spans must agree with the communicator's own
//! [`RankStats::phases`] accounting, and `--trace-out`'s file writer must
//! produce both artifacts.

use pgr_bench::tables::write_traces;
use pgr_circuit::mcnc::Mcnc;
use pgr_mpi::{run_traced, MachineModel, RankStats, RunMeta, TraceConfig};
use pgr_router::{Algorithm, PartitionKind, RouterConfig};
use std::path::PathBuf;

fn meta(procs: usize) -> RunMeta {
    RunMeta {
        circuit: "primary2".into(),
        algorithm: "row-wise".into(),
        procs,
        machine: "SparcCenter 1000".into(),
        scale: 0.05,
        seed: 0,
        degraded: false,
        clock: "virtual".into(),
        scenario: String::new(),
        budget_degraded: false,
    }
}

fn traced_route(procs: usize) -> (Vec<RankStats>, Vec<pgr_mpi::RankTrace>, MachineModel) {
    let circuit = Mcnc::Primary2.circuit_scaled(0.05);
    let machine = MachineModel::sparc_center_1000();
    let cfg = RouterConfig::default();
    let procs = procs.min(circuit.num_rows());
    let (report, traces) = run_traced(procs, machine, TraceConfig::on(), move |comm| {
        Algorithm::RowWise.route(&circuit, &cfg, PartitionKind::PinWeight, comm);
    });
    (report.stats, traces, machine)
}

/// Pull `"key":<number>` out of a single-line Chrome trace event.
fn field(line: &str, key: &str) -> f64 {
    let pat = format!("\"{key}\":");
    let start = line
        .find(&pat)
        .unwrap_or_else(|| panic!("no {key} in {line}"))
        + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).expect("field terminator");
    rest[..end].parse().expect("numeric field")
}

fn name_of(line: &str) -> &str {
    let start = line.find("\"name\":\"").expect("name field") + 8;
    let end = start + line[start..].find('"').expect("name close");
    &line[start..end]
}

#[test]
fn chrome_trace_phase_spans_agree_with_rank_stats() {
    let (stats, traces, machine) = traced_route(4);
    assert_eq!(stats.len(), traces.len());
    assert!(
        traces.iter().all(|t| t.dropped == 0),
        "ring must not overflow at this size"
    );

    // Unit-level agreement: reconstructed durations equal the stats.
    for (s, t) in stats.iter().zip(&traces) {
        assert!(!s.phases.is_empty(), "route marks phases");
        assert_eq!(t.phase_durations(), s.phases, "rank {}", t.rank);
    }

    // Exporter-level agreement: parse the phase spans back out of the
    // Chrome JSON and compare durations (emitted in µs, 3 decimals).
    let json = pgr_mpi::chrome_trace_json(&traces);
    for (s, t) in stats.iter().zip(&traces) {
        let mut spans: Vec<(String, f64)> = Vec::new();
        for line in json.lines().filter(|l| l.contains("\"cat\":\"phase\"")) {
            if field(line, "tid") as usize == t.rank {
                let name = name_of(line)
                    .strip_prefix("phase:")
                    .expect("phase span name")
                    .to_string();
                spans.push((name, field(line, "dur") / 1e6));
            }
        }
        assert_eq!(spans.len(), s.phases.len(), "rank {}", t.rank);
        for ((got_name, got_dur), (want_name, want_dur)) in spans.iter().zip(&s.phases) {
            assert_eq!(got_name, want_name);
            assert!(
                (got_dur - want_dur).abs() < 1e-6,
                "rank {}: {got_name} {got_dur} vs {want_dur}",
                t.rank
            );
        }
    }
    let _ = machine;
}

#[test]
fn write_traces_emits_both_artifacts() {
    let (stats, traces, machine) = traced_route(2);
    let dir: PathBuf = std::env::temp_dir().join(format!("pgr-trace-test-{}", std::process::id()));
    let trace_path = write_traces(
        &dir,
        "primary2_row",
        &traces,
        &stats,
        &machine,
        &meta(2),
        &[],
    )
    .expect("write ok");
    assert!(trace_path.ends_with("primary2_row.trace.json"));

    let trace_json = std::fs::read_to_string(&trace_path).expect("trace file");
    let stats_json =
        std::fs::read_to_string(dir.join("primary2_row.stats.json")).expect("stats file");
    std::fs::remove_dir_all(&dir).ok();

    // Both artifacts are balanced JSON naming every rank.
    for (json, tag) in [(&trace_json, "trace"), (&stats_json, "stats")] {
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{tag} balanced"
        );
    }
    for t in &traces {
        assert!(trace_json.contains(&format!("rank {}", t.rank)));
        assert!(stats_json.contains(&format!("\"rank\":{}", t.rank)));
    }
    assert!(stats_json.contains(&format!("\"machine\":\"{}\"", machine.name)));
    assert!(stats_json.contains("\"makespan\":"));
    // Every phase the stats account for shows up as a span.
    for (name, _) in &stats[0].phases {
        assert!(
            trace_json.contains(&format!("phase:{name}")),
            "missing span {name}"
        );
    }
}

#[test]
fn untraced_route_produces_no_trace_events() {
    let circuit = Mcnc::Primary2.circuit_scaled(0.05);
    let cfg = RouterConfig::default();
    let (_, traces) = run_traced(2, MachineModel::ideal(), TraceConfig::off(), move |comm| {
        Algorithm::RowWise.route(&circuit, &cfg, PartitionKind::PinWeight, comm);
    });
    assert!(
        traces.is_empty(),
        "TraceConfig::off() must not collect anything"
    );
}
