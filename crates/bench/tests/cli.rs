//! Black-box CLI tests of the `repro` binary: flag validation, the
//! `--trace-out` directory guarantee, and the `aggregate` exit-code
//! contract (0 clean, 1 regression, 2 usage/load error).

use pgr_mpi::RunMeta;
use pgr_obs::{metrics_json, RankMetrics, SCHEMA_VERSION};
use std::path::PathBuf;
use std::process::{Command, Output};

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("spawn repro")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("pgr-cli-test-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn meta(algorithm: &str, procs: usize) -> RunMeta {
    RunMeta {
        circuit: "fixture".into(),
        algorithm: algorithm.into(),
        procs,
        machine: "TestBox".into(),
        scale: 1.0,
        seed: 7,
        degraded: false,
        clock: "virtual".into(),
        scenario: String::new(),
        budget_degraded: false,
    }
}

fn stats_fixture(run: &RunMeta, makespan: f64) -> String {
    format!(
        "{{\"schema_version\":{SCHEMA_VERSION},\"kind\":\"stats\",\"run\":{},\
         \"machine\":\"TestBox\",\"makespan\":{makespan},\"ranks\":[\
         {{\"rank\":0,\"time\":{makespan},\"ops\":1,\"msgs_sent\":0,\
         \"bytes_sent\":0,\"peak_mem\":0,\"phases\":[]}}]}}",
        run.to_json()
    )
}

fn metrics_fixture(run: &RunMeta, tracks: u64) -> String {
    let mut m = RankMetrics::empty(0);
    m.counters.push(("route.tracks".into(), tracks));
    metrics_json(run, &[m])
}

/// Fixture set: a serial run plus one parallel run.
fn fixture_dir(tag: &str) -> PathBuf {
    let dir = tmp_dir(tag);
    let serial = meta("serial", 1);
    let par = meta("row-wise", 4);
    std::fs::write(dir.join("s.stats.json"), stats_fixture(&serial, 10.0)).unwrap();
    std::fs::write(dir.join("s.metrics.json"), metrics_fixture(&serial, 100)).unwrap();
    std::fs::write(dir.join("p.stats.json"), stats_fixture(&par, 2.5)).unwrap();
    std::fs::write(dir.join("p.metrics.json"), metrics_fixture(&par, 103)).unwrap();
    dir
}

#[test]
fn unknown_flag_is_an_error_not_a_target() {
    let out = repro(&["--bogus", "table1"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr(&out).contains("unknown flag '--bogus'"),
        "{}",
        stderr(&out)
    );

    let out = repro(&["aggregate", "--bogus", "somewhere"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr(&out).contains("unknown flag '--bogus'"),
        "{}",
        stderr(&out)
    );
}

#[test]
fn unknown_target_and_empty_invocations_exit_2() {
    let out = repro(&["no-such-target"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown target"), "{}", stderr(&out));

    assert_eq!(repro(&[]).status.code(), Some(2));
    assert_eq!(repro(&["aggregate"]).status.code(), Some(2));
}

#[test]
fn trace_out_creates_missing_directories_at_parse_time() {
    let root = tmp_dir("trace-out");
    let nested = root.join("a/b/c");
    assert!(!nested.exists());
    // The unknown target aborts before any routing, but the directory
    // guarantee holds from flag parsing on.
    let out = repro(&["--trace-out", nested.to_str().unwrap(), "no-such-target"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(nested.is_dir(), "--trace-out must create the directory");
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn aggregate_exit_codes_cover_clean_regression_and_error() {
    let dir = fixture_dir("agg");
    let agg_json = dir.join("agg.json");

    // Clean run writes the report and exits 0.
    let out = repro(&[
        "aggregate",
        "--out",
        agg_json.to_str().unwrap(),
        "--md",
        dir.join("agg.md").to_str().unwrap(),
        dir.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert!(agg_json.is_file());

    // Against its own baseline: still 0.
    let out = repro(&[
        "aggregate",
        "--baseline",
        agg_json.to_str().unwrap(),
        dir.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert!(
        stderr(&out).contains("baseline check passed"),
        "{}",
        stderr(&out)
    );

    // Injected regression: baseline expects a faster parallel run → 1.
    let doctored = std::fs::read_to_string(&agg_json)
        .unwrap()
        .replace("\"makespan\":2.5,", "\"makespan\":2.0,");
    let doctored_path = dir.join("doctored.json");
    std::fs::write(&doctored_path, doctored).unwrap();
    let out = repro(&[
        "aggregate",
        "--baseline",
        doctored_path.to_str().unwrap(),
        dir.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1), "{}", stderr(&out));
    assert!(stderr(&out).contains("regression"), "{}", stderr(&out));

    // ...unless the tolerance is loose enough → 0 again.
    let out = repro(&[
        "aggregate",
        "--baseline",
        doctored_path.to_str().unwrap(),
        "--tolerance",
        "0.5",
        dir.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));

    // Unusable input: missing path → 2 with the path named.
    let out = repro(&["aggregate", "/definitely/not/here"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("not/here"), "{}", stderr(&out));

    // Bad tolerance → 2.
    let out = repro(&["aggregate", "--tolerance", "-1", dir.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    std::fs::remove_dir_all(&dir).ok();
}
