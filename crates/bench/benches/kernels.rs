//! Micro-benchmarks of the computational kernels under the router:
//! rectilinear MSTs (step 1 and 4's dominant work), the lazy segment-tree
//! density profile (the structure every coarse/switchable decision
//! probes), union-find, the wire codec the ranks serialize with, and the
//! columnar circuit store's per-net sweep paths.

use pgr_bench::harness::{black_box, Harness};
use pgr_geom::rng::{rng_from_seed, shuffled_indices};
use pgr_geom::{mst_adjacency_limited, mst_prim, DensityProfile, Point, UnionFind};
use pgr_mpi::Wire;

fn random_points(n: usize, seed: u64) -> Vec<Point> {
    let mut rng = rng_from_seed(seed);
    (0..n)
        .map(|_| Point::new(rng.gen_range(0..2000), rng.gen_range(0..64)))
        .collect()
}

fn bench_mst(h: &mut Harness) {
    for &n in &[4usize, 32, 256, 2048] {
        let pts = random_points(n, 42);
        h.bench(&format!("mst_prim/{n}"), |b| {
            b.iter(|| mst_prim(black_box(&pts)))
        });
    }
    for &n in &[32usize, 256, 1024] {
        let pts = random_points(n, 43);
        let rows: Vec<i64> = pts.iter().map(|p| p.y).collect();
        h.bench(&format!("mst_adjacency_limited/{n}"), |b| {
            b.iter(|| mst_adjacency_limited(black_box(&pts), black_box(&rows)))
        });
    }
}

fn bench_profile(h: &mut Harness) {
    for &width in &[256usize, 4096] {
        h.bench(&format!("density_profile/add_remove/{width}"), |b| {
            let mut p = DensityProfile::new(width);
            let mut rng = rng_from_seed(7);
            b.iter(|| {
                let lo = rng.gen_range(0..width as i64);
                let hi = (lo + rng.gen_range(1..200)).min(width as i64 - 1);
                p.add_span(lo, hi, 1);
                black_box(p.max());
                p.add_span(lo, hi, -1);
            })
        });
        h.bench(&format!("density_profile/max_if_added/{width}"), |b| {
            let mut p = DensityProfile::new(width);
            let mut rng = rng_from_seed(8);
            for _ in 0..200 {
                let lo = rng.gen_range(0..width as i64);
                p.add_span(lo, (lo + 40).min(width as i64 - 1), 1);
            }
            b.iter(|| {
                let lo = rng.gen_range(0..width as i64);
                black_box(p.max_if_added(lo, (lo + 60).min(width as i64 - 1)))
            })
        });
        h.bench(&format!("density_profile/counts_into/{width}"), |b| {
            let mut p = DensityProfile::new(width);
            let mut rng = rng_from_seed(9);
            for _ in 0..200 {
                let lo = rng.gen_range(0..width as i64);
                p.add_span(lo, (lo + 40).min(width as i64 - 1), 1);
            }
            let mut out = vec![0i64; width];
            b.iter(|| {
                p.counts_into(&mut out);
                black_box(out[width / 2])
            })
        });
    }
}

fn bench_coarse_eval(h: &mut Harness) {
    use pgr_circuit::NetId;
    use pgr_mpi::{Comm, MachineModel};
    use pgr_router::route::coarse::CoarseState;
    use pgr_router::route::state::{Node, Segment};
    use pgr_router::RouterConfig;

    for &n in &[64usize, 512] {
        let mut rng = rng_from_seed(0xC0A5);
        let segs: Vec<Segment> = (0..n)
            .map(|i| {
                let r1 = rng.gen_range(0..8u32);
                let r2 = rng.gen_range(0..8u32);
                let a = Node::fake(rng.gen_range(0..600i64), r1);
                let b = Node::fake(rng.gen_range(0..600i64), r2);
                Segment::new(NetId(i as u32), a, b)
            })
            .collect();
        let order: Vec<u32> = (0..segs.len() as u32).collect();
        let cfg = RouterConfig::default();
        h.bench(&format!("coarse_eval/improve_slice/{n}"), |b| {
            let mut comm = Comm::solo(MachineModel::ideal());
            let mut st = CoarseState::new(0, 9, 640, 8);
            let mut orients = st.init_random(&segs, &mut rng_from_seed(7), &mut comm);
            b.iter(|| black_box(st.improve_slice(&segs, &mut orients, &order, &cfg, &mut comm)))
        });
    }
}

fn bench_unionfind(h: &mut Harness) {
    h.bench("unionfind_1k_random_unions", |b| {
        let mut rng = rng_from_seed(3);
        let pairs: Vec<(usize, usize)> = (0..1000)
            .map(|_| (rng.gen_range(0..1000), rng.gen_range(0..1000)))
            .collect();
        b.iter(|| {
            let mut uf = UnionFind::new(1000);
            for &(x, y) in &pairs {
                uf.union(x, y);
            }
            black_box(uf.components())
        })
    });
}

fn bench_wire(h: &mut Harness) {
    let payload: Vec<(u32, i64, i64, Option<u32>)> = (0..1000)
        .map(|i| (i, i as i64 * 3, -(i as i64), (i % 3 == 0).then_some(i)))
        .collect();
    h.bench("wire_encode_1k_records", |b| {
        b.iter(|| black_box(payload.to_bytes()))
    });
    let bytes = payload.to_bytes();
    h.bench("wire_decode_1k_records", |b| {
        b.iter(|| black_box(Vec::<(u32, i64, i64, Option<u32>)>::from_bytes(&bytes).unwrap()))
    });
}

fn bench_channel_router(h: &mut Harness) {
    use pgr_channel::{assign_tracks, merge_net_intervals, Interval};
    for &n in &[100usize, 2000] {
        let mut rng = rng_from_seed(17);
        let ivs: Vec<Interval> = (0..n)
            .map(|i| {
                let lo = rng.gen_range(0..3000i64);
                Interval::new((i % 200) as u32, lo, lo + rng.gen_range(1..150))
            })
            .collect();
        h.bench(&format!("left_edge_router/{n}"), |b| {
            b.iter(|| black_box(assign_tracks(&merge_net_intervals(&ivs))))
        });
    }
}

fn bench_critical_path(h: &mut Harness) {
    use pgr_mpi::{build_profile, run_instrumented, InstrumentConfig, MachineModel};

    // One instrumented ring run outside the timed loop; the kernel under
    // test is the profiler itself — matching, backward walk, blame.
    let machine = MachineModel::sparc_center_1000();
    let instr = InstrumentConfig::full();
    let (_, traces, _) = run_instrumented(4, machine, instr, |comm| {
        let p = comm.size();
        let me = comm.rank();
        for round in 0..200u64 {
            comm.compute(1_000 + (me as u64 + round) % 512);
            let next = (me + 1) % p;
            comm.send(next, 1, &round);
            comm.recv::<u64>((me + p - 1) % p, 1);
        }
    });
    h.bench("critical_path/extract", |b| {
        b.iter(|| black_box(build_profile(black_box(&traces), black_box(&machine))))
    });
}

fn bench_circuit_store(h: &mut Harness) {
    use pgr_circuit::mcnc::Mcnc;
    use pgr_circuit::NetId;

    // The columnar store's hot paths: sweeping every net's slice of the
    // shared pin-index arena, and resolving pin positions in batch from
    // the SoA columns — the access pattern of the Steiner/coarse loops.
    let c = Mcnc::Primary2.circuit_scaled(0.2);
    h.bench("circuit/net_pins_sweep", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for chunk in c.nets_chunks() {
                for net in chunk.net_ids() {
                    total += black_box(c.net_pins(net)).len();
                }
            }
            black_box(total)
        })
    });
    h.bench("circuit/pin_points_batch", |b| {
        let mut points = Vec::new();
        b.iter(|| {
            let mut sum = 0i64;
            for i in 0..c.num_nets() {
                let pins = c.net_pins(NetId::from_index(i));
                points.clear();
                c.pin_points_into(pins, &mut points);
                sum += points.iter().map(|p| p.x).sum::<i64>();
            }
            black_box(sum)
        })
    });
}

fn bench_scenarios(h: &mut Harness) {
    use pgr_circuit::scenarios::{ScenarioFamily, ScenarioSpec};

    // The adversarial workload generator: one representative per shape
    // class — the dense-degree-tail family, the giant-fanout family,
    // and a degenerate family. Each spec is deterministic, so the bench
    // measures pure generation cost.
    for family in [
        ScenarioFamily::CongestionStress,
        ScenarioFamily::ClockTree,
        ScenarioFamily::DuplicateGeometry,
    ] {
        let spec = ScenarioSpec::new(family, 0.25, 1997);
        h.bench(&format!("scenarios/generate/{}", family.name()), |b| {
            b.iter(|| black_box(spec.generate()))
        });
    }
}

fn bench_shuffle(h: &mut Harness) {
    h.bench("shuffle_10k", |b| {
        let mut rng = rng_from_seed(5);
        b.iter(|| black_box(shuffled_indices(10_000, &mut rng)))
    });
}

fn main() {
    let mut h = Harness::from_args();
    bench_mst(&mut h);
    bench_profile(&mut h);
    bench_coarse_eval(&mut h);
    bench_unionfind(&mut h);
    bench_wire(&mut h);
    bench_channel_router(&mut h);
    bench_circuit_store(&mut h);
    bench_scenarios(&mut h);
    bench_critical_path(&mut h);
    bench_shuffle(&mut h);
    h.finish();
}
