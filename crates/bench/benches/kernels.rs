//! Micro-benchmarks of the computational kernels under the router:
//! rectilinear MSTs (step 1 and 4's dominant work), the lazy segment-tree
//! density profile (the structure every coarse/switchable decision
//! probes), union-find, and the wire codec the ranks serialize with.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use pgr_geom::rng::{rng_from_seed, shuffled_indices};
use pgr_geom::{mst_adjacency_limited, mst_prim, DensityProfile, Point, UnionFind};
use pgr_mpi::Wire;
use rand::Rng;

fn random_points(n: usize, seed: u64) -> Vec<Point> {
    let mut rng = rng_from_seed(seed);
    (0..n).map(|_| Point::new(rng.gen_range(0..2000), rng.gen_range(0..64))).collect()
}

fn bench_mst(c: &mut Criterion) {
    let mut g = c.benchmark_group("mst_prim");
    for &n in &[4usize, 32, 256, 2048] {
        let pts = random_points(n, 42);
        g.bench_with_input(BenchmarkId::from_parameter(n), &pts, |b, pts| b.iter(|| mst_prim(black_box(pts))));
    }
    g.finish();

    let mut g = c.benchmark_group("mst_adjacency_limited");
    for &n in &[32usize, 256, 1024] {
        let pts = random_points(n, 43);
        let rows: Vec<i64> = pts.iter().map(|p| p.y).collect();
        g.bench_with_input(BenchmarkId::from_parameter(n), &(pts, rows), |b, (pts, rows)| {
            b.iter(|| mst_adjacency_limited(black_box(pts), black_box(rows)))
        });
    }
    g.finish();
}

fn bench_profile(c: &mut Criterion) {
    let mut g = c.benchmark_group("density_profile");
    for &width in &[256usize, 4096] {
        g.bench_function(BenchmarkId::new("add_remove", width), |b| {
            let mut p = DensityProfile::new(width);
            let mut rng = rng_from_seed(7);
            b.iter(|| {
                let lo = rng.gen_range(0..width as i64);
                let hi = (lo + rng.gen_range(1..200)).min(width as i64 - 1);
                p.add_span(lo, hi, 1);
                black_box(p.max());
                p.add_span(lo, hi, -1);
            })
        });
        g.bench_function(BenchmarkId::new("max_if_added", width), |b| {
            let mut p = DensityProfile::new(width);
            let mut rng = rng_from_seed(8);
            for _ in 0..200 {
                let lo = rng.gen_range(0..width as i64);
                p.add_span(lo, (lo + 40).min(width as i64 - 1), 1);
            }
            b.iter(|| {
                let lo = rng.gen_range(0..width as i64);
                black_box(p.max_if_added(lo, (lo + 60).min(width as i64 - 1)))
            })
        });
    }
    g.finish();
}

fn bench_unionfind(c: &mut Criterion) {
    c.bench_function("unionfind_1k_random_unions", |b| {
        let mut rng = rng_from_seed(3);
        let pairs: Vec<(usize, usize)> = (0..1000).map(|_| (rng.gen_range(0..1000), rng.gen_range(0..1000))).collect();
        b.iter(|| {
            let mut uf = UnionFind::new(1000);
            for &(x, y) in &pairs {
                uf.union(x, y);
            }
            black_box(uf.components())
        })
    });
}

fn bench_wire(c: &mut Criterion) {
    let payload: Vec<(u32, i64, i64, Option<u32>)> =
        (0..1000).map(|i| (i, i as i64 * 3, -(i as i64), (i % 3 == 0).then_some(i))).collect();
    c.bench_function("wire_encode_1k_records", |b| b.iter(|| black_box(payload.to_bytes())));
    let bytes = payload.to_bytes();
    c.bench_function("wire_decode_1k_records", |b| {
        b.iter(|| black_box(Vec::<(u32, i64, i64, Option<u32>)>::from_bytes(&bytes).unwrap()))
    });
}

fn bench_channel_router(c: &mut Criterion) {
    use pgr_channel::{assign_tracks, merge_net_intervals, Interval};
    let mut g = c.benchmark_group("left_edge_router");
    for &n in &[100usize, 2000] {
        let mut rng = rng_from_seed(17);
        let ivs: Vec<Interval> = (0..n)
            .map(|i| {
                let lo = rng.gen_range(0..3000i64);
                Interval::new((i % 200) as u32, lo, lo + rng.gen_range(1..150))
            })
            .collect();
        g.bench_with_input(BenchmarkId::from_parameter(n), &ivs, |b, ivs| {
            b.iter(|| black_box(assign_tracks(&merge_net_intervals(ivs))))
        });
    }
    g.finish();
}

fn bench_shuffle(c: &mut Criterion) {
    c.bench_function("shuffle_10k", |b| {
        let mut rng = rng_from_seed(5);
        b.iter(|| black_box(shuffled_indices(10_000, &mut rng)))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_mst, bench_profile, bench_unionfind, bench_wire, bench_channel_router, bench_shuffle
);
criterion_main!(benches);
