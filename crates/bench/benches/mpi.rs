//! Benchmarks of the message-passing substrate: point-to-point
//! throughput, collectives across rank counts, and tag-matching under
//! out-of-order traffic. Real host time (the virtual clocks are free).

use pgr_bench::harness::{black_box, Harness};
use pgr_mpi::{run, MachineModel};

fn bench_p2p(h: &mut Harness) {
    for &msgs in &[100usize, 1000] {
        h.bench(&format!("p2p_roundtrips/{msgs}"), |b| {
            b.iter(|| {
                run(2, MachineModel::ideal(), |comm| {
                    if comm.rank() == 0 {
                        for i in 0..msgs as u64 {
                            comm.send(1, 1, &i);
                            let _: u64 = comm.recv(1, 2);
                        }
                    } else {
                        for _ in 0..msgs {
                            let v: u64 = comm.recv(0, 1);
                            comm.send(0, 2, &v);
                        }
                    }
                })
            })
        });
    }
}

fn bench_collectives(h: &mut Harness) {
    for &ranks in &[2usize, 4, 8] {
        h.bench(&format!("collectives_100_rounds/allreduce/{ranks}"), |b| {
            b.iter(|| {
                run(ranks, MachineModel::ideal(), |comm| {
                    let mut acc = 0u64;
                    for i in 0..100u64 {
                        acc =
                            comm.allreduce(acc + i + comm.rank() as u64, |a, b| a.wrapping_add(b));
                    }
                    black_box(acc)
                })
            })
        });
        h.bench(
            &format!("collectives_100_rounds/allgather_vec/{ranks}"),
            |b| {
                b.iter(|| {
                    run(ranks, MachineModel::ideal(), |comm| {
                        let payload: Vec<u64> = (0..64).map(|i| i + comm.rank() as u64).collect();
                        let mut total = 0u64;
                        for _ in 0..100 {
                            let all = comm.allgather(payload.clone());
                            total += all.len() as u64;
                        }
                        black_box(total)
                    })
                })
            },
        );
    }
}

fn bench_alltoall(h: &mut Harness) {
    h.bench("alltoall_8ranks_1k_items", |b| {
        b.iter(|| {
            run(8, MachineModel::ideal(), |comm| {
                let data: Vec<Vec<u64>> = (0..8).map(|d| vec![d as u64; 128]).collect();
                let back = comm.alltoall(data);
                black_box(back.iter().map(|v| v.len()).sum::<usize>())
            })
        })
    });
}

fn main() {
    let mut h = Harness::from_args();
    bench_p2p(&mut h);
    bench_collectives(&mut h);
    bench_alltoall(&mut h);
    h.finish();
}
