//! Benchmarks of the message-passing substrate: point-to-point
//! throughput, collectives across rank counts, and tag-matching under
//! out-of-order traffic. Real host time (the virtual clocks are free).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use pgr_mpi::{run, MachineModel};

fn bench_p2p(c: &mut Criterion) {
    let mut g = c.benchmark_group("p2p_roundtrips");
    g.sample_size(10);
    for &msgs in &[100usize, 1000] {
        g.bench_with_input(BenchmarkId::from_parameter(msgs), &msgs, |b, &msgs| {
            b.iter(|| {
                run(2, MachineModel::ideal(), |comm| {
                    if comm.rank() == 0 {
                        for i in 0..msgs as u64 {
                            comm.send(1, 1, &i);
                            let _: u64 = comm.recv(1, 2);
                        }
                    } else {
                        for _ in 0..msgs {
                            let v: u64 = comm.recv(0, 1);
                            comm.send(0, 2, &v);
                        }
                    }
                })
            })
        });
    }
    g.finish();
}

fn bench_collectives(c: &mut Criterion) {
    let mut g = c.benchmark_group("collectives_100_rounds");
    g.sample_size(10);
    for &ranks in &[2usize, 4, 8] {
        g.bench_with_input(BenchmarkId::new("allreduce", ranks), &ranks, |b, &ranks| {
            b.iter(|| {
                run(ranks, MachineModel::ideal(), |comm| {
                    let mut acc = 0u64;
                    for i in 0..100u64 {
                        acc = comm.allreduce(acc + i + comm.rank() as u64, |a, b| a.wrapping_add(b));
                    }
                    black_box(acc)
                })
            })
        });
        g.bench_with_input(BenchmarkId::new("allgather_vec", ranks), &ranks, |b, &ranks| {
            b.iter(|| {
                run(ranks, MachineModel::ideal(), |comm| {
                    let payload: Vec<u64> = (0..64).map(|i| i + comm.rank() as u64).collect();
                    let mut total = 0u64;
                    for _ in 0..100 {
                        let all = comm.allgather(payload.clone());
                        total += all.len() as u64;
                    }
                    black_box(total)
                })
            })
        });
    }
    g.finish();
}

fn bench_alltoall(c: &mut Criterion) {
    c.bench_function("alltoall_8ranks_1k_items", |b| {
        b.iter(|| {
            run(8, MachineModel::ideal(), |comm| {
                let data: Vec<Vec<u64>> = (0..8).map(|d| vec![d as u64; 128]).collect();
                let back = comm.alltoall(data);
                black_box(back.iter().map(|v| v.len()).sum::<usize>())
            })
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_p2p, bench_collectives, bench_alltoall
);
criterion_main!(benches);
