//! Router-level benchmarks: the serial pipeline end to end and per step,
//! plus the three parallel algorithms on a scaled MCNC instance.
//!
//! These complement the `repro` binary: `repro` regenerates the paper's
//! tables in deterministic *virtual* time, while these measure the real
//! host cost of the implementation.

use pgr_bench::harness::{black_box, Harness};
use pgr_circuit::mcnc::Mcnc;
use pgr_circuit::{generate, Circuit, GeneratorConfig, NetId};
use pgr_geom::rng::rng_from_seed;
use pgr_mpi::{Comm, MachineModel};
use pgr_router::route::coarse::CoarseState;
use pgr_router::route::connect::connect_net;
use pgr_router::route::steiner::{build_segments, whole_net};
use pgr_router::{route_parallel, route_serial, Algorithm, PartitionKind, RouterConfig};

fn small_circuit() -> Circuit {
    generate(&GeneratorConfig::small("bench", 99))
}

fn bench_serial_pipeline(h: &mut Harness) {
    for &scale in &[0.05f64, 0.15] {
        let circuit = Mcnc::Biomed.circuit_scaled(scale);
        let cfg = RouterConfig::with_seed(1);
        h.bench(
            &format!("serial_route/biomed_{:.0}pct", scale * 100.0),
            |b| {
                b.iter(|| {
                    let mut comm = Comm::solo(MachineModel::ideal());
                    black_box(route_serial(&circuit, &cfg, &mut comm))
                })
            },
        );
    }
}

fn bench_steps(h: &mut Harness) {
    let circuit = small_circuit();

    h.bench("step1_steiner_all_nets", |b| {
        let mut comm = Comm::solo(MachineModel::ideal());
        b.iter(|| {
            let mut total = 0usize;
            for i in 0..circuit.num_nets() {
                let w = whole_net(&circuit, NetId::from_index(i));
                total += build_segments(&w, &mut comm).len();
            }
            black_box(total)
        })
    });

    // Pre-build segments once for the coarse bench.
    let segments: Vec<_> = (0..circuit.num_nets())
        .flat_map(|i| {
            let w = whole_net(&circuit, NetId::from_index(i));
            build_segments(&w, &mut Comm::solo(MachineModel::ideal()))
        })
        .collect();
    let cfg = RouterConfig::with_seed(1);
    h.bench("step2_coarse_route", |b| {
        b.iter(|| {
            let mut st = CoarseState::new(0, circuit.num_rows(), circuit.width, cfg.grid_w);
            let mut rng = rng_from_seed(2);
            black_box(st.route(
                &segments,
                &cfg,
                &mut rng,
                &mut Comm::solo(MachineModel::ideal()),
            ))
        })
    });

    h.bench("step4_connect_all_nets", |b| {
        let works: Vec<_> = (0..circuit.num_nets())
            .map(|i| whole_net(&circuit, NetId::from_index(i)))
            .collect();
        b.iter(|| {
            let mut spans = 0usize;
            for w in &works {
                spans += connect_net(w, &mut Comm::solo(MachineModel::ideal()))
                    .spans
                    .len();
            }
            black_box(spans)
        })
    });
}

fn bench_parallel_algorithms(h: &mut Harness) {
    let circuit = Mcnc::Primary2.circuit_scaled(0.3);
    let cfg = RouterConfig::with_seed(1);
    for algo in Algorithm::ALL {
        h.bench(&format!("parallel_4ranks/{}", algo.name()), |b| {
            b.iter(|| {
                black_box(route_parallel(
                    &circuit,
                    &cfg,
                    algo,
                    PartitionKind::PinWeight,
                    4,
                    MachineModel::sparc_center_1000(),
                ))
            })
        });
    }
}

fn bench_generation(h: &mut Harness) {
    h.bench("generate_small_circuit", |b| {
        b.iter(|| black_box(generate(&GeneratorConfig::small("g", 1))))
    });
}

fn main() {
    let mut h = Harness::from_args();
    bench_serial_pipeline(&mut h);
    bench_steps(&mut h);
    bench_parallel_algorithms(&mut h);
    bench_generation(&mut h);
    h.finish();
}
