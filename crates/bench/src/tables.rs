//! Regeneration of the paper's tables and figures.
//!
//! Table 1  — circuit characteristics.
//! Table 2 / Figure 4 — row-wise pin partition: scaled tracks + speedups.
//! Table 3 / Figure 5 — net-wise pin partition: scaled tracks + speedups.
//! Table 4 / Figure 6 — hybrid pin partition: scaled tracks + speedups.
//! Table 5  — hybrid, absolute results on the SMP and DMP machine models.
//! Extras   — §5 partition ablation, net-wise sync-period sweep,
//!            machine-model sensitivity, the net-wise sync-protocol and
//!            Steiner-refinement ablations, per-phase time breakdowns,
//!            detailed channel-routing validation, and communication
//!            matrices (all beyond the paper's own tables).

use crate::{circuits, fmt_secs, serial_baseline, SEED};
use pgr_circuit::Circuit;
use pgr_mpi::trace::{chrome_trace_json, chrome_trace_with_path, stats_json, RankTrace};
use pgr_mpi::{
    build_profile, ChaosConfig, ChaosLayer, ClockMode, InstrumentConfig, MachineModel,
    MetricsConfig, RankMetrics, RankStats, ReliabilityConfig, RunMeta,
};
use pgr_obs::{metrics_json, recovery_names, BlameClass, Profile};
use pgr_router::{
    route_parallel, route_parallel_instrumented, Algorithm, PartitionKind, RecoveryPolicy,
    RouterConfig,
};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Harness options.
#[derive(Debug, Clone)]
pub struct Opts {
    /// Circuit scale: 1.0 = the paper's full sizes.
    pub scale: f64,
    /// Restrict to these circuit names (None = all six).
    pub filter: Option<Vec<String>>,
    /// Directory to write per-run Chrome traces and stats JSON into
    /// (`--trace-out`). None = tracing off, zero overhead.
    pub trace_out: Option<PathBuf>,
    /// `chaos` target: recovery-round budget override (`--max-rounds`).
    pub max_rounds: Option<u32>,
    /// `chaos` target: surviving-rank floor override (`--min-ranks`).
    pub min_ranks: Option<usize>,
    /// `chaos` target: kill-schedule override (`--kill R@B`, repeatable)
    /// as `(rank, phase-boundary index)`; boundaries are validated
    /// against the [`pgr_mpi::Phase`] registry at parse time. Empty =
    /// the default one-kill schedule.
    pub kills: Vec<(usize, usize)>,
    /// `stress` target: restrict to these adversarial families
    /// (`--family NAME`, repeatable; validated against the
    /// [`pgr_circuit::scenarios::ScenarioFamily`] registry at parse
    /// time). None = the full registry.
    pub families: Option<Vec<String>>,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            scale: 1.0,
            filter: None,
            trace_out: None,
            max_rounds: None,
            min_ranks: None,
            kills: Vec::new(),
            families: None,
        }
    }
}

impl Opts {
    /// Full instrumentation (trace + metrics) when `--trace-out` is set;
    /// everything off — and allocation-free — otherwise.
    fn instrument(&self) -> InstrumentConfig {
        if self.trace_out.is_some() {
            InstrumentConfig::full()
        } else {
            InstrumentConfig::off()
        }
    }

    /// The run descriptor stamped into every artifact of this harness.
    fn run_meta(
        &self,
        circuit: &str,
        algorithm: &str,
        procs: usize,
        machine: &MachineModel,
    ) -> RunMeta {
        RunMeta {
            circuit: circuit.to_string(),
            algorithm: algorithm.to_string(),
            procs,
            machine: machine.name.to_string(),
            scale: self.scale,
            seed: SEED,
            degraded: false,
            clock: "virtual".into(),
            scenario: String::new(),
            budget_degraded: false,
        }
    }
}

/// Write one run's artifacts into `dir` (created if missing): the Chrome
/// trace (`<label>.trace.json`, for `chrome://tracing` / Perfetto), the
/// per-rank stats (`<label>.stats.json`), and — when metric shards were
/// collected — the per-rank metrics (`<label>.metrics.json`). Returns
/// the trace path.
pub fn write_traces(
    dir: &Path,
    label: &str,
    traces: &[RankTrace],
    stats: &[RankStats],
    machine: &MachineModel,
    run: &RunMeta,
    metrics: &[RankMetrics],
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let trace_path = dir.join(format!("{label}.trace.json"));
    std::fs::write(&trace_path, chrome_trace_json(traces))?;
    std::fs::write(
        dir.join(format!("{label}.stats.json")),
        stats_json(stats, machine, run),
    )?;
    if !metrics.is_empty() {
        std::fs::write(
            dir.join(format!("{label}.metrics.json")),
            metrics_json(run, metrics),
        )?;
    }
    Ok(trace_path)
}

impl Opts {
    fn circuits(&self) -> Vec<Circuit> {
        circuits(self.scale, self.filter.as_deref())
    }

    fn note_scale(&self) {
        if self.scale < 1.0 {
            println!(
                "(circuits scaled to {:.0} % of the paper's sizes)",
                self.scale * 100.0
            );
        }
    }
}

fn cfg() -> RouterConfig {
    RouterConfig::with_seed(SEED)
}

/// Clamp a rank count to the circuit's row count (row partitions need at
/// least one row per rank).
fn clamp_procs(p: usize, circuit: &Circuit) -> usize {
    p.min(circuit.num_rows())
}

/// Table 1: characteristics of the test circuits.
pub fn table1(opts: &Opts) {
    println!("Table 1: Characteristics of test circuits");
    opts.note_scale();
    println!(
        "{:<12} {:>6} {:>8} {:>8} {:>8} {:>12}",
        "circuit", "rows", "pins", "cells", "nets", "max net deg"
    );
    for c in opts.circuits() {
        let s = c.stats();
        println!(
            "{:<12} {:>6} {:>8} {:>8} {:>8} {:>12}",
            s.name, s.rows, s.pins, s.cells, s.nets, s.max_net_degree
        );
    }
    println!();
}

/// Tables 2–4 + Figures 4–6: scaled track quality and speedups of one
/// algorithm on the SparcCenter 1000 model, P ∈ {1, 2, 4, 8}.
pub fn quality_and_speedup(algo: Algorithm, opts: &Opts) {
    let (tno, fno) = match algo {
        Algorithm::RowWise => (2, 4),
        Algorithm::NetWise => (3, 5),
        Algorithm::Hybrid => (4, 6),
    };
    let machine = MachineModel::sparc_center_1000();
    let procs = [1usize, 2, 4, 8];
    let cfg = cfg();

    println!(
        "Table {tno}: Scaled track results of the {} pin partition algorithm",
        algo.name()
    );
    opts.note_scale();
    println!(
        "{:<12} {:>8} {:>8} {:>8} {:>8}",
        "circuit", "1 proc", "2 procs", "4 procs", "8 procs"
    );
    let mut speedups: Vec<(String, Vec<f64>)> = Vec::new();
    for c in opts.circuits() {
        let base = serial_baseline(&c, &cfg, machine);
        if let Some(dir) = &opts.trace_out {
            // One instrumented serial run per circuit (virtual time is
            // identical to the baseline's) so the aggregator gets the
            // `algorithm="serial"` record every speedup is scaled to.
            let (report, traces, metrics) =
                pgr_mpi::run_instrumented(1, machine, opts.instrument(), |comm| {
                    pgr_router::route_serial(&c, &cfg, comm);
                });
            let run = opts.run_meta(&c.name, "serial", 1, &machine);
            if let Err(e) = write_traces(
                dir,
                &format!("{}_serial", c.name),
                &traces,
                &report.stats,
                &machine,
                &run,
                &metrics,
            ) {
                eprintln!("trace write failed for {}_serial: {e}", c.name);
            }
        }
        let mut row = format!("{:<12}", c.name);
        let mut sp = Vec::new();
        for &p in &procs {
            let p = clamp_procs(p, &c);
            let out = route_parallel_instrumented(
                &c,
                &cfg,
                algo,
                PartitionKind::PinWeight,
                p,
                machine,
                opts.instrument(),
            );
            pgr_router::verify::assert_verified(&c, &out.result);
            if let Some(dir) = &opts.trace_out {
                let label = format!("{}_{}_p{}", c.name, algo.name(), p);
                let run = opts.run_meta(&c.name, algo.name(), p, &machine);
                if let Err(e) = write_traces(
                    dir,
                    &label,
                    &out.traces,
                    &out.stats,
                    &machine,
                    &run,
                    &out.metrics,
                ) {
                    eprintln!("trace write failed for {label}: {e}");
                }
            }
            row.push_str(&format!(" {:>8.3}", out.result.scaled_tracks(&base.result)));
            sp.push(base.time / out.time);
        }
        println!("{row}");
        speedups.push((c.name.clone(), sp));
    }
    println!();
    println!(
        "Figure {fno}: Speedup results of the {} pin partition algorithm",
        algo.name()
    );
    println!(
        "{:<12} {:>8} {:>8} {:>8} {:>8}",
        "circuit", "1 proc", "2 procs", "4 procs", "8 procs"
    );
    let mut avg = vec![0.0; procs.len()];
    for (name, sp) in &speedups {
        let mut row = format!("{:<12}", name);
        for (i, s) in sp.iter().enumerate() {
            row.push_str(&format!(" {s:>8.2}"));
            avg[i] += s / speedups.len() as f64;
        }
        println!("{row}");
    }
    let mut row = format!("{:<12}", "average");
    for a in &avg {
        row.push_str(&format!(" {a:>8.2}"));
    }
    println!("{row}");
    println!();
}

/// Table 5: the hybrid algorithm's absolute results (track count, area,
/// simulated runtime, speedup) on both platform models. A serial run
/// whose modeled working set exceeds the Paragon's 32 MB/node is marked
/// `mem>32MB` and its speedups carry a `*` (computed against the
/// simulated serial time, which the hardware could not have produced —
/// the paper extrapolated those entries the same way).
pub fn table5(opts: &Opts) {
    let cfg = cfg();
    println!("Table 5: Hybrid pin partition results on both platforms");
    opts.note_scale();
    for (machine, procs) in [
        (MachineModel::sparc_center_1000(), vec![1usize, 4, 8]),
        (MachineModel::intel_paragon(), vec![1usize, 8, 16]),
    ] {
        println!("--- {} ---", machine.name);
        println!(
            "{:<12} {:>6} {:>9} {:>12} {:>9} {:>9} {:>9} {:>9}",
            "circuit", "procs", "tracks", "area", "time(s)", "speedup", "sc.trk", "sc.area"
        );
        for c in opts.circuits() {
            let base = serial_baseline(&c, &cfg, machine);
            let serial_fits = machine.fits_in_node(base.peak_mem);
            let star = if serial_fits { "" } else { "*" };
            // Serial row.
            println!(
                "{:<12} {:>6} {:>9} {:>12} {:>9} {:>9} {:>9} {:>9}",
                c.name,
                1,
                base.result.track_count(),
                base.result.area(),
                if serial_fits {
                    fmt_secs(base.time)
                } else {
                    "mem>32MB".to_string()
                },
                "1.00",
                "1.000",
                "1.000"
            );
            for &p in procs.iter().skip(1) {
                let p = clamp_procs(p, &c);
                let out = route_parallel(
                    &c,
                    &cfg,
                    Algorithm::Hybrid,
                    PartitionKind::PinWeight,
                    p,
                    machine,
                );
                pgr_router::verify::assert_verified(&c, &out.result);
                let mem_note = if out.fits_memory { "" } else { "!" };
                println!(
                    "{:<12} {:>6} {:>9} {:>12} {:>9} {:>8}{}{} {:>9.3} {:>9.3}",
                    "",
                    p,
                    out.result.track_count(),
                    out.result.area(),
                    format!("{}{}", fmt_secs(out.time), mem_note),
                    format!("{:.2}", base.time / out.time),
                    star,
                    if star.is_empty() { " " } else { "" },
                    out.result.scaled_tracks(&base.result),
                    out.result.scaled_area(&base.result),
                );
            }
        }
    }
    println!(
        "(*: serial run exceeds the Paragon's 32 MB/node — speedup vs. simulated serial time)"
    );
    println!();
}

/// Big-circuit smoke: generate a synthetic circuit an order of magnitude
/// beyond the paper's largest (~200k nets at scale 1.0) and route it
/// serially, proving the chunked columnar store and the per-net sweep
/// paths hold up past the MCNC sizes. Prints the chunk count so CI can
/// gate that the chunked path (not a single degenerate chunk) was
/// exercised.
pub fn big_circuit(opts: &Opts) {
    use pgr_circuit::{generate, GeneratorConfig, NET_CHUNK_SIZE};

    let nets = ((200_000f64 * opts.scale).round() as usize).max(4_000);
    let rows = ((160f64 * opts.scale.sqrt()).round() as usize).max(8);
    let clock_nets = vec![(nets / 100).max(64), (nets / 200).max(32)];
    let clock_pins: usize = clock_nets.iter().sum();
    let gen_cfg = GeneratorConfig {
        name: "big-synth".into(),
        rows,
        cells: nets.max(rows * 4),
        pins: nets * 3 + nets / 2 + clock_pins,
        nets,
        seed: SEED,
        cell_width: (4, 10),
        equivalent_fraction: 0.35,
        locality: 0.85,
        clock_nets,
    };
    let wall = std::time::Instant::now();
    let c = generate(&gen_cfg);
    let gen_secs = wall.elapsed().as_secs_f64();
    let chunks = c.nets_chunks().count();
    println!("Big-circuit smoke: chunked columnar store beyond MCNC sizes");
    println!(
        "generated nets={} pins={} cells={} rows={} chunks={} (chunk size {}) in {:.1}s",
        c.num_nets(),
        c.num_pins(),
        c.num_cells(),
        c.num_rows(),
        chunks,
        NET_CHUNK_SIZE,
        gen_secs
    );
    assert_eq!(chunks, c.num_nets().div_ceil(NET_CHUNK_SIZE));
    let wall = std::time::Instant::now();
    let base = serial_baseline(&c, &cfg(), MachineModel::sparc_center_1000());
    println!(
        "routed serially: tracks={} wirelength={} simulated {} (wall {:.1}s), verified",
        base.result.track_count(),
        base.result.wirelength,
        fmt_secs(base.time),
        wall.elapsed().as_secs_f64()
    );
    println!();
}

/// §5 ablation: the four net-partition heuristics under the net-wise
/// algorithm (and the hybrid's connection phase), on the clock-heavy
/// avq.large instance where pin-number-weight matters most.
pub fn partition_ablation(opts: &Opts) {
    let cfg = cfg();
    let machine = MachineModel::sparc_center_1000();
    println!("Net-partition heuristic ablation (8 procs, SparcCenter model)");
    opts.note_scale();
    println!(
        "{:<12} {:<12} {:>10} {:>9} {:>9}",
        "circuit", "partition", "sc.tracks", "time(s)", "speedup"
    );
    for c in opts.circuits() {
        let base = serial_baseline(&c, &cfg, machine);
        for kind in PartitionKind::ALL {
            let p = clamp_procs(8, &c);
            let out = route_parallel(&c, &cfg, Algorithm::NetWise, kind, p, machine);
            println!(
                "{:<12} {:<12} {:>10.3} {:>9} {:>9.2}",
                c.name,
                kind.name(),
                out.result.scaled_tracks(&base.result),
                fmt_secs(out.time),
                base.time / out.time
            );
        }
    }
    println!();
}

/// Beyond the paper: the net-wise quality/runtime trade-off as the
/// synchronization period varies (§5 discusses it qualitatively).
pub fn sync_sweep(opts: &Opts) {
    let machine = MachineModel::sparc_center_1000();
    println!("Net-wise synchronization-period sweep (8 procs, SparcCenter model)");
    opts.note_scale();
    println!(
        "{:<12} {:>8} {:>10} {:>9} {:>9}",
        "circuit", "period", "sc.tracks", "time(s)", "speedup"
    );
    for c in opts.circuits() {
        let base = serial_baseline(&c, &cfg(), machine);
        for period in [16usize, 64, 256, 1024, 8192] {
            let mut cfg = cfg();
            cfg.sync_period = period;
            let p = clamp_procs(8, &c);
            let out = route_parallel(
                &c,
                &cfg,
                Algorithm::NetWise,
                PartitionKind::PinWeight,
                p,
                machine,
            );
            println!(
                "{:<12} {:>8} {:>10.3} {:>9} {:>9.2}",
                c.name,
                period,
                out.result.scaled_tracks(&base.result),
                fmt_secs(out.time),
                base.time / out.time
            );
        }
    }
    println!();
}

/// Beyond the paper: the reproduction's synchronization-protocol
/// ablation. The paper's net-wise quality loss is reproduced by (a) the
/// coarse replicated grid every rank keeps and (b) lossy
/// snapshot-overwrite conflict resolution; exact delta merging over a
/// full-resolution replica (impossible to afford in 1997, trivial today)
/// removes most of the quality loss while the communication bill — and
/// hence the poor speedup — remains.
pub fn exact_sync_ablation(opts: &Opts) {
    let machine = MachineModel::sparc_center_1000();
    println!("Net-wise synchronization-protocol ablation (8 procs, SparcCenter model)");
    opts.note_scale();
    println!(
        "{:<12} {:<22} {:>10} {:>9} {:>9}",
        "circuit", "protocol", "sc.tracks", "time(s)", "speedup"
    );
    for c in opts.circuits() {
        let base = serial_baseline(&c, &cfg(), machine);
        for (label, exact, factor) in [
            ("1997 snapshot (paper)", false, 8),
            ("exact deltas, coarse", true, 8),
            ("exact deltas, full-res", true, 1),
        ] {
            let mut cfg = cfg();
            cfg.netwise_exact_sync = exact;
            cfg.netwise_grid_factor = factor;
            let p = clamp_procs(8, &c);
            let out = route_parallel(
                &c,
                &cfg,
                Algorithm::NetWise,
                PartitionKind::PinWeight,
                p,
                machine,
            );
            println!(
                "{:<12} {:<22} {:>10.3} {:>9} {:>9.2}",
                c.name,
                label,
                out.result.scaled_tracks(&base.result),
                fmt_secs(out.time),
                base.time / out.time
            );
        }
    }
    println!();
}

/// Beyond the paper: the communication matrix (KB sent per src→dst
/// pair) of each algorithm at 8 ranks — making the partition structure
/// visible: row-wise/hybrid talk mostly to rank 0 (distribution/gather)
/// and their row neighbors; net-wise hammers everyone (all channels are
/// shared).
pub fn comm_matrix(opts: &Opts) {
    use pgr_mpi::run;
    println!("Communication matrices (KB sent, src rows × dst columns, 8 ranks)");
    opts.note_scale();
    for c in opts.circuits() {
        let p = clamp_procs(8, &c);
        for algo in Algorithm::ALL {
            let report = run(p, MachineModel::sparc_center_1000(), |comm| {
                algo.route(&c, &cfg(), PartitionKind::PinWeight, comm);
            });
            let m = report.comm_matrix();
            println!("{} / {}:", c.name, algo.name());
            print!("{:>8}", "src\\dst");
            for d in 0..p {
                print!(" {d:>7}");
            }
            println!();
            for (s, row) in m.iter().enumerate() {
                print!("{s:>8}");
                for &b in row {
                    print!(" {:>7}", b / 1024);
                }
                println!();
            }
        }
    }
    println!();
}

/// Extension ablation: median-point Steiner refinement of the step-1
/// trees (off in the paper's TWGR). Reports serial wirelength / track /
/// runtime deltas, and the refined flow's hybrid speedup.
pub fn steiner_ablation(opts: &Opts) {
    let machine = MachineModel::sparc_center_1000();
    println!("Steiner-refinement ablation (serial, and hybrid at 8 procs)");
    opts.note_scale();
    println!(
        "{:<12} {:<8} {:>12} {:>9} {:>10} {:>12} {:>10}",
        "circuit", "steiner", "wirelength", "tracks", "serial(s)", "hybrid sc.trk", "hybrid spd"
    );
    for c in opts.circuits() {
        for refine in [false, true] {
            let mut cfg = cfg();
            cfg.steiner_refine = refine;
            let base = serial_baseline(&c, &cfg, machine);
            let p = clamp_procs(8, &c);
            let out = route_parallel(
                &c,
                &cfg,
                Algorithm::Hybrid,
                PartitionKind::PinWeight,
                p,
                machine,
            );
            println!(
                "{:<12} {:<8} {:>12} {:>9} {:>10} {:>12.3} {:>10.2}",
                c.name,
                if refine { "median" } else { "plain" },
                base.result.wirelength,
                base.result.track_count(),
                fmt_secs(base.time),
                out.result.scaled_tracks(&base.result),
                base.time / out.time,
            );
        }
    }
    println!();
}

/// Beyond the paper: run the left-edge detailed channel router over the
/// serial global solution, proving each channel packs into its density
/// (the theorem the paper's track metric stands on) and quantifying the
/// small refinement same-net merging buys.
pub fn detailed_refinement(opts: &Opts) {
    use pgr_router::detailed::route_channels;
    println!("Detailed (left-edge) channel routing vs. the density metric (serial solutions)");
    opts.note_scale();
    println!(
        "{:<12} {:>12} {:>12} {:>9} {:>12}",
        "circuit", "density Σ", "LEA tracks", "ratio", "utilization"
    );
    for c in opts.circuits() {
        let base = serial_baseline(&c, &cfg(), MachineModel::ideal());
        let d = route_channels(&base.result);
        assert!(d.validate(), "no shorts");
        println!(
            "{:<12} {:>12} {:>12} {:>9.3} {:>12.3}",
            c.name,
            base.result.track_count(),
            d.track_count(),
            d.track_count() as f64 / base.result.track_count() as f64,
            d.mean_utilization()
        );
    }
    println!();
}

/// Beyond the paper: per-phase virtual-time breakdown (serial and each
/// algorithm's slowest rank at 8 procs). Shows where each algorithm's
/// time goes — coarse routing dominates serially; the net-wise sync cost
/// lands in its coarse/switchable phases.
pub fn phase_breakdown(opts: &Opts) {
    use pgr_mpi::run_instrumented;
    let machine = MachineModel::sparc_center_1000();
    let cfg = cfg();
    println!("Per-phase virtual time (seconds; slowest rank at 8 procs)");
    opts.note_scale();
    print!("{:<12} {:<10}", "circuit", "algorithm");
    for p in pgr_obs::Phase::ALL {
        print!(" {:>11}", p.name());
    }
    println!(" {:>11}", "total");
    type PhaseRow = (String, Vec<(&'static str, f64)>, f64);
    let emit = |label: &str,
                run: &RunMeta,
                traces: &[RankTrace],
                stats: &[RankStats],
                metrics: &[RankMetrics]| {
        if let Some(dir) = &opts.trace_out {
            match write_traces(dir, label, traces, stats, &machine, run, metrics) {
                Ok(path) => eprintln!("trace written: {}", path.display()),
                Err(e) => eprintln!("trace write failed for {label}: {e}"),
            }
        }
    };
    for c in opts.circuits() {
        let mut rows: Vec<PhaseRow> = Vec::new();
        let (serial_report, serial_traces, serial_metrics) =
            run_instrumented(1, machine, opts.instrument(), |comm| {
                pgr_router::route_serial(&c, &cfg, comm);
            });
        emit(
            &format!("{}_serial", c.name),
            &opts.run_meta(&c.name, "serial", 1, &machine),
            &serial_traces,
            &serial_report.stats,
            &serial_metrics,
        );
        rows.push((
            "serial".into(),
            serial_report.stats[0].phases.clone(),
            serial_report.stats[0].time,
        ));
        for algo in Algorithm::ALL {
            let p = clamp_procs(8, &c);
            let (report, traces, metrics) =
                run_instrumented(p, machine, opts.instrument(), |comm| {
                    algo.route(&c, &cfg, PartitionKind::PinWeight, comm);
                });
            emit(
                &format!("{}_{}", c.name, algo.name()),
                &opts.run_meta(&c.name, algo.name(), p, &machine),
                &traces,
                &report.stats,
                &metrics,
            );
            let slowest = report
                .stats
                .iter()
                .max_by(|a, b| a.time.partial_cmp(&b.time).expect("finite"))
                .expect("ranks");
            rows.push((algo.name().into(), slowest.phases.clone(), slowest.time));
        }
        for (name, phases, total) in rows {
            print!("{:<12} {:<10}", c.name, name);
            for want in pgr_obs::Phase::ALL {
                let d: f64 = phases
                    .iter()
                    .filter(|(n, _)| *n == want.name())
                    .map(|(_, d)| d)
                    .sum();
                print!(" {:>11}", fmt_secs(d));
            }
            println!(" {:>11}", fmt_secs(total));
        }
    }
    println!();
}

/// Beyond the paper: wall-clock execution mode. All four drivers run
/// with [`ClockMode::Wall`] — ranks run free, real host time is measured
/// from one shared epoch — and the table reports the deterministic
/// virtual seconds *and* the measured wall seconds side by side. Routing
/// never reads either clock, so results (and the virtual account) are
/// bit-identical to a virtual-mode run; the wall column is what this
/// host actually did. With `--trace-out` each run's stats are stamped
/// `"clock":"wall"` and carry per-rank/per-phase wall seconds.
pub fn wall_clock(opts: &Opts) {
    let machine = MachineModel::sparc_center_1000();
    let cfg = RouterConfig {
        clock: ClockMode::Wall,
        ..cfg()
    };
    println!("Wall-clock mode: virtual vs. host seconds, all four drivers (SparcCenter model)");
    opts.note_scale();
    println!(
        "{:<12} {:<10} {:>2} {:>12} {:>12} {:>8}",
        "circuit", "algorithm", "P", "virtual(s)", "wall(s)", "tracks"
    );
    let emit = |label: &str,
                run: &mut RunMeta,
                traces: &[RankTrace],
                stats: &[RankStats],
                metrics: &[RankMetrics]| {
        if let Some(dir) = &opts.trace_out {
            run.clock = "wall".into();
            if let Err(e) = write_traces(dir, label, traces, stats, &machine, run, metrics) {
                eprintln!("trace write failed for {label}: {e}");
            }
        }
    };
    for c in opts.circuits() {
        // Serial driver on a wall-clocked solo communicator.
        let instr = InstrumentConfig {
            clock: ClockMode::Wall,
            ..opts.instrument()
        };
        let (report, traces, metrics) = pgr_mpi::run_instrumented(1, machine, instr, |comm| {
            pgr_router::route_serial(&c, &cfg, comm)
        });
        let serial = &report.stats[0];
        let wall = report
            .wall_makespan()
            .expect("wall seconds measured in Wall mode");
        println!(
            "{:<12} {:<10} {:>2} {:>12} {:>12.3} {:>8}",
            c.name,
            "serial",
            1,
            fmt_secs(serial.time),
            wall,
            report.results[0].track_count(),
        );
        emit(
            &format!("{}_serial_wall", c.name),
            &mut opts.run_meta(&c.name, "serial", 1, &machine),
            &traces,
            &report.stats,
            &metrics,
        );
        // The three parallel drivers, clock threaded via RouterConfig.
        for algo in Algorithm::ALL {
            let p = clamp_procs(8, &c);
            let out = route_parallel_instrumented(
                &c,
                &cfg,
                algo,
                PartitionKind::PinWeight,
                p,
                machine,
                opts.instrument(),
            );
            pgr_router::verify::assert_verified(&c, &out.result);
            let wall = out.wall_time.expect("wall seconds measured in Wall mode");
            println!(
                "{:<12} {:<10} {:>2} {:>12} {:>12.3} {:>8}",
                c.name,
                algo.name(),
                p,
                fmt_secs(out.time),
                wall,
                out.result.track_count(),
            );
            emit(
                &format!("{}_{}_wall_p{p}", c.name, algo.name()),
                &mut opts.run_meta(&c.name, algo.name(), p, &machine),
                &out.traces,
                &out.stats,
                &out.metrics,
            );
        }
    }
    println!(
        "(virtual seconds are the deterministic simulated account; wall seconds are this host)"
    );
    println!();
}

/// §5's β knob: the pin-number-weight exponent, swept on the
/// clock-net-heavy circuits where it matters ("our experiments shows
/// that this technique works well for β≈… for AVQ-LARGE").
pub fn beta_sweep(opts: &Opts) {
    let machine = MachineModel::sparc_center_1000();
    println!("Pin-number-weight β sweep (hybrid, 8 procs, SparcCenter model)");
    opts.note_scale();
    println!(
        "{:<12} {:>6} {:>10} {:>9} {:>9}",
        "circuit", "beta", "sc.tracks", "time(s)", "speedup"
    );
    for c in opts.circuits() {
        let base = serial_baseline(&c, &cfg(), machine);
        for beta in [0.5, 1.0, 1.6, 2.0, 3.0] {
            let mut cfg = cfg();
            cfg.pin_weight_beta = beta;
            let p = clamp_procs(8, &c);
            let out = route_parallel(
                &c,
                &cfg,
                Algorithm::Hybrid,
                PartitionKind::PinWeight,
                p,
                machine,
            );
            println!(
                "{:<12} {:>6.1} {:>10.3} {:>9} {:>9.2}",
                c.name,
                beta,
                out.result.scaled_tracks(&base.result),
                fmt_secs(out.time),
                base.time / out.time
            );
        }
    }
    println!();
}

/// Beyond the paper: speedup sensitivity to the machine's latency and
/// bandwidth (8 procs). The hybrid algorithm barely notices the network
/// (it is compute-bound); the net-wise algorithm's all-channel
/// synchronization makes it acutely bandwidth-sensitive — quantifying
/// the paper's "communication is more costly than computation".
pub fn machine_sweep(opts: &Opts) {
    println!("Machine-model sensitivity of speedup (8 procs)");
    opts.note_scale();
    println!(
        "{:<12} {:>10} {:>12} {:>12} {:>12}",
        "circuit", "latency", "bandwidth", "hybrid", "net-wise"
    );
    for c in opts.circuits() {
        for lat_us in [20.0, 500.0] {
            for bw_mb in [2.0, 18.0, 200.0] {
                let mut m = MachineModel::sparc_center_1000();
                m.latency = lat_us * 1e-6;
                m.sec_per_byte = 1.0 / (bw_mb * 1e6);
                let base = serial_baseline(&c, &cfg(), m);
                let p = clamp_procs(8, &c);
                let hybrid = route_parallel(
                    &c,
                    &cfg(),
                    Algorithm::Hybrid,
                    PartitionKind::PinWeight,
                    p,
                    m,
                );
                let netwise = route_parallel(
                    &c,
                    &cfg(),
                    Algorithm::NetWise,
                    PartitionKind::PinWeight,
                    p,
                    m,
                );
                println!(
                    "{:<12} {:>8}us {:>10}MB/s {:>12.2} {:>12.2}",
                    c.name,
                    lat_us,
                    bw_mb,
                    base.time / hybrid.time,
                    base.time / netwise.time
                );
            }
        }
    }
    println!();
}

/// Beyond the paper: chaos smoke — every algorithm routed under a seeded
/// fault schedule (drop + delay + reorder + duplicate + corruption) with
/// the reliable transport on, plus the highest rank killed at a phase
/// boundary. Each degraded result is verified against the circuit; the
/// table shows the protocol effort (retransmits, reorder-buffer fills,
/// suppressed duplicates, corrupt frames healed) and the recovery
/// accounting (rounds survived, ranks lost). A second, kill-heavy pass
/// per circuit runs hybrid under a one-round [`RecoveryPolicy`], forcing
/// the serial fallback — degraded, stamped in the stats, and
/// auto-verified. With `--trace-out` the per-run artifacts are written
/// under `<circuit>_<algo>_chaos_p<P>` / `<circuit>_hybrid_fallback_p<P>`
/// labels with algorithms `"<name>-chaos"` / `"hybrid-fallback"`, so
/// `repro aggregate` can trend robustness separately from the clean
/// runs.
///
/// The schedule and the recovery policy are overridable from the CLI:
/// `--kill R@B` (repeatable) replaces the default one-kill schedule,
/// `--max-rounds` / `--min-ranks` override the [`RecoveryPolicy`]
/// bounds. The printed `redone` / `restore` columns expose the
/// checkpoint-resume accounting (`recovery.redone_phases`,
/// `recovery.checkpoint.restores`): a resumed round redoes only the
/// phases past the agreed boundary, a full restart redoes them all.
pub fn chaos_smoke(opts: &Opts) {
    let machine = MachineModel::sparc_center_1000();
    let default_policy = RecoveryPolicy::default();
    let policy = RecoveryPolicy {
        max_rounds: opts.max_rounds.unwrap_or(default_policy.max_rounds),
        min_ranks: opts.min_ranks.unwrap_or(default_policy.min_ranks),
    };
    let cfg = RouterConfig {
        recovery: policy,
        ..cfg()
    };
    println!("Chaos smoke: message faults + rank kills, reliable transport on");
    opts.note_scale();
    println!(
        "{:<12} {:<10} {:>2} {:>6} {:>8} {:>7} {:>7} {:>7} {:>7} {:>8} {:>6} {:>7} {:>8}",
        "circuit",
        "algorithm",
        "P",
        "killed",
        "tracks",
        "retran",
        "reord",
        "dup",
        "corrupt",
        "recovery",
        "lost",
        "redone",
        "restore"
    );
    for c in opts.circuits() {
        let p = clamp_procs(4, &c);
        for &(rank, _) in &opts.kills {
            if rank >= p {
                eprintln!(
                    "repro: --kill rank {rank} is out of range for circuit {} (P = {p})",
                    c.name
                );
                std::process::exit(2);
            }
        }
        for algo in Algorithm::ALL {
            let mut chaos = ChaosConfig::messages_with_corruption(SEED);
            // Default schedule: the highest rank dies entering its third
            // phase; the survivors restore its coarse-boundary snapshot
            // and resume on P-1. `--kill` replaces the schedule wholesale.
            if p > 1 {
                chaos.kills = if opts.kills.is_empty() {
                    vec![(p - 1, 2)]
                } else {
                    opts.kills.iter().map(|&(r, b)| (r, b as u64)).collect()
                };
            }
            let killed = if chaos.kills.is_empty() {
                "-".to_string()
            } else {
                chaos
                    .kills
                    .iter()
                    .map(|(r, _)| r.to_string())
                    .collect::<Vec<_>>()
                    .join("+")
            };
            let instr = InstrumentConfig {
                metrics: MetricsConfig::on(),
                fault: Some(Arc::new(ChaosLayer::new(chaos))),
                reliability: ReliabilityConfig::on(),
                ..opts.instrument()
            };
            let out = route_parallel_instrumented(
                &c,
                &cfg,
                algo,
                PartitionKind::PinWeight,
                p,
                machine,
                instr,
            );
            pgr_router::verify::assert_verified(&c, &out.result);
            let sum =
                |name: &str| -> u64 { out.metrics.iter().filter_map(|m| m.counter(name)).sum() };
            println!(
                "{:<12} {:<10} {:>2} {:>6} {:>8} {:>7} {:>7} {:>7} {:>7} {:>8} {:>6} {:>7} {:>8}",
                c.name,
                algo.name(),
                p,
                killed,
                out.result.track_count(),
                sum(pgr_mpi::reliable::RETRANSMITS),
                sum(pgr_mpi::reliable::REORDER_BUFFERED),
                sum(pgr_mpi::reliable::DUPLICATES_DROPPED),
                sum(pgr_mpi::reliable::CORRUPT_DROPPED),
                sum(pgr_router::metrics::names::RECOVERY_EVENTS),
                sum(pgr_router::metrics::names::RANKS_LOST),
                sum(recovery_names::REDONE_PHASES),
                sum(recovery_names::CHECKPOINT_RESTORES),
            );
            if let Some(dir) = &opts.trace_out {
                let label = format!("{}_{}_chaos_p{p}", c.name, algo.name());
                let run = opts.run_meta(&c.name, &format!("{}-chaos", algo.name()), p, &machine);
                if let Err(e) = write_traces(
                    dir,
                    &label,
                    &out.traces,
                    &out.stats,
                    &machine,
                    &run,
                    &out.metrics,
                ) {
                    eprintln!("trace write failed for {label}: {e}");
                }
            }
        }

        // Kill-heavy pass: the same schedule under a one-round recovery
        // budget breaches the policy, so the run must finish via the
        // serial fallback — degraded, stamped, and auto-verified.
        if p > 1 {
            let mut chaos = ChaosConfig::messages_with_corruption(SEED);
            chaos.kills = vec![(p - 1, 1)];
            let fallback_cfg = RouterConfig {
                recovery: RecoveryPolicy {
                    max_rounds: 1,
                    min_ranks: 1,
                },
                ..cfg.clone()
            };
            let instr = InstrumentConfig {
                metrics: MetricsConfig::on(),
                fault: Some(Arc::new(ChaosLayer::new(chaos))),
                reliability: ReliabilityConfig::on(),
                ..opts.instrument()
            };
            let out = route_parallel_instrumented(
                &c,
                &fallback_cfg,
                Algorithm::Hybrid,
                PartitionKind::PinWeight,
                p,
                machine,
                instr,
            );
            assert!(out.degraded, "{}: the one-round budget must breach", c.name);
            pgr_router::verify::assert_verified(&c, &out.result);
            let sum =
                |name: &str| -> u64 { out.metrics.iter().filter_map(|m| m.counter(name)).sum() };
            println!(
                "{:<12} {:<10} {:>2} {:>6} {:>8} {:>7} {:>7} {:>7} {:>7} {:>8} {:>6} {:>7} {:>8}  (serial fallback, verified)",
                c.name,
                "fallback",
                p,
                p - 1,
                out.result.track_count(),
                sum(pgr_mpi::reliable::RETRANSMITS),
                sum(pgr_mpi::reliable::REORDER_BUFFERED),
                sum(pgr_mpi::reliable::DUPLICATES_DROPPED),
                sum(pgr_mpi::reliable::CORRUPT_DROPPED),
                sum(pgr_router::metrics::names::RECOVERY_EVENTS),
                sum(pgr_router::metrics::names::RANKS_LOST),
                sum(recovery_names::REDONE_PHASES),
                sum(recovery_names::CHECKPOINT_RESTORES),
            );
            if let Some(dir) = &opts.trace_out {
                let label = format!("{}_hybrid_fallback_p{p}", c.name);
                let mut run = opts.run_meta(&c.name, "hybrid-fallback", p, &machine);
                run.degraded = out.degraded;
                if let Err(e) = write_traces(
                    dir,
                    &label,
                    &out.traces,
                    &out.stats,
                    &machine,
                    &run,
                    &out.metrics,
                ) {
                    eprintln!("trace write failed for {label}: {e}");
                }
            }
        }
    }
    println!();
}

/// One stress-matrix cell's observed result, compared bit-for-bit
/// across the determinism re-run.
#[derive(Debug, Clone, PartialEq)]
struct StressCell {
    /// `routed` | `degraded` | `budget_exceeded` | `panic`.
    outcome: &'static str,
    /// Track count of a completed route (None on error/panic).
    tracks: Option<i64>,
    /// Virtual makespan bits (0 on panic).
    time_bits: u64,
    /// Breach / shed / recovery detail for the table.
    note: String,
}

/// Budget lever applied to one stress cell. `Time` and `Mem` are
/// derived from the family's own unbudgeted serial probe, so the matrix
/// self-calibrates across scales; `Rounds` arms
/// [`pgr_mpi::ResourceBudget::max_recovery_rounds`] `= 0` under a kill
/// schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
enum StressBudget {
    Unlimited,
    Time,
    Mem,
    Rounds,
}

impl StressBudget {
    fn name(self) -> &'static str {
        match self {
            StressBudget::Unlimited => "unlimited",
            StressBudget::Time => "time",
            StressBudget::Mem => "mem",
            StressBudget::Rounds => "rounds",
        }
    }

    /// Materialize against the family's serial probe.
    fn materialize(self, probe: &StressProbe) -> pgr_mpi::ResourceBudget {
        let mut b = pgr_mpi::ResourceBudget::unlimited();
        match self {
            StressBudget::Unlimited => {}
            StressBudget::Time => b.max_phase_seconds = Some(probe.time_limit),
            StressBudget::Mem => b.max_rank_bytes = Some((probe.peak_mem / 2).max(1)),
            StressBudget::Rounds => b.max_recovery_rounds = Some(0),
        }
        b
    }
}

/// One family's unbudgeted serial probe: the self-calibration every
/// budget lever of its row block derives from.
struct StressProbe {
    peak_mem: u64,
    /// The per-phase time lever. When the optional coarse phase is the
    /// slowest phase of the probe, the lever lands midway between it and
    /// the slowest mandatory phase — mandatory phases fit, coarse
    /// overruns and *sheds*, and the run completes `budget_degraded`.
    /// On families whose mandatory work dominates, the lever falls back
    /// to a third of the total, and the overrun lands in a mandatory
    /// phase as the structured hard breach.
    time_limit: f64,
}

fn stress_probe(circuit: &Circuit, cfg: &RouterConfig, machine: MachineModel) -> StressProbe {
    let (report, _, _) = pgr_mpi::run_instrumented(1, machine, InstrumentConfig::off(), |comm| {
        let result = pgr_router::route_serial(circuit, cfg, comm);
        pgr_router::verify::assert_verified(circuit, &result);
    });
    let s = &report.stats[0];
    let phase_secs = |name: &str| -> f64 {
        s.phases
            .iter()
            .filter(|(n, _)| *n == name)
            .map(|(_, d)| d)
            .sum()
    };
    let coarse = phase_secs("coarse");
    let mandatory_max = s
        .phases
        .iter()
        .filter(|(n, _)| *n != "coarse" && *n != "switchable")
        .map(|(_, d)| *d)
        .fold(0.0f64, f64::max);
    let time_limit = if coarse > mandatory_max && mandatory_max > 0.0 {
        (mandatory_max + coarse) / 2.0
    } else {
        s.time / 3.0
    };
    StressProbe {
        peak_mem: s.peak_mem,
        time_limit,
    }
}

/// Chaos schedule applied to one stress cell (parallel cells only).
#[derive(Debug, Clone, Copy, PartialEq)]
enum StressChaos {
    None,
    Messages,
    Kill,
}

impl StressChaos {
    fn name(self) -> &'static str {
        match self {
            StressChaos::None => "none",
            StressChaos::Messages => "messages",
            StressChaos::Kill => "kill",
        }
    }
}

/// `repro stress`: the adversarial workload × chaos × algorithm matrix.
///
/// Every [`pgr_circuit::scenarios::ScenarioFamily`] (or the `--family`
/// subset) is generated at `--scale`, probed once serially without
/// limits, and then driven through every driver under budget levers
/// derived from its own probe and under seeded chaos schedules. Each
/// cell ends in a structured outcome — `routed`, `degraded` (completed
/// by shedding refinement or by the recovery fallback, verified), or
/// `budget_exceeded` (the agreed [`pgr_router::RouteError`]) — and is
/// run twice: any bitwise divergence between the two runs, any panic,
/// or a full matrix that fails to exhibit all three outcomes (including
/// a congestion-stress shed) exits non-zero. With `--trace-out` every
/// cell's stats/metrics artifacts are stamped with the self-describing
/// scenario name and the `budget_degraded` flag, so `repro aggregate`
/// can trend shed rates.
pub fn stress(opts: &Opts) {
    use pgr_circuit::scenarios::{ScenarioFamily, ScenarioSpec};
    use pgr_router::RouteError;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    let machine = MachineModel::sparc_center_1000();
    let families: Vec<ScenarioFamily> = match &opts.families {
        None => ScenarioFamily::ALL.to_vec(),
        Some(names) => names
            .iter()
            .map(|n| ScenarioFamily::from_name(n).expect("validated at parse time"))
            .collect(),
    };
    let full_matrix = opts.families.is_none();
    println!("Stress matrix: adversarial workloads × chaos × drivers (SparcCenter model)");
    opts.note_scale();
    println!(
        "{:<20} {:<9} {:>2} {:<9} {:<10} {:<16} {:>7}  detail",
        "family", "algorithm", "P", "chaos", "budget", "outcome", "tracks"
    );

    let mut panics = 0usize;
    let mut divergent = 0usize;
    let mut seen_routed = false;
    let mut seen_degraded = false;
    let mut seen_exceeded = false;
    let mut congestion_shed = false;

    for family in families {
        let spec = ScenarioSpec::new(family, opts.scale, SEED);
        let circuit = spec.generate();
        circuit
            .validate()
            .unwrap_or_else(|e| panic!("{}: generated circuit invalid: {e:?}", spec.name()));
        let probe = stress_probe(&circuit, &cfg(), machine);
        let p = clamp_procs(3, &circuit);

        // (algorithm, procs, chaos, budget) cells of this family's row
        // block. Serial takes the budget levers without chaos; every
        // parallel driver takes budgets, message chaos, and — where the
        // clamped world is big enough to lose a rank — kill chaos with
        // the recovery-round budget.
        let mut cells: Vec<(Option<Algorithm>, usize, StressChaos, StressBudget)> = vec![
            (None, 1, StressChaos::None, StressBudget::Unlimited),
            (None, 1, StressChaos::None, StressBudget::Time),
            (None, 1, StressChaos::None, StressBudget::Mem),
        ];
        for algo in Algorithm::ALL {
            for budget in [
                StressBudget::Unlimited,
                StressBudget::Time,
                StressBudget::Mem,
            ] {
                cells.push((Some(algo), p, StressChaos::None, budget));
            }
            for budget in [StressBudget::Unlimited, StressBudget::Time] {
                cells.push((Some(algo), p, StressChaos::Messages, budget));
            }
            if p > 1 {
                cells.push((Some(algo), p, StressChaos::Kill, StressBudget::Unlimited));
                cells.push((Some(algo), p, StressChaos::Kill, StressBudget::Rounds));
            }
        }

        for (algo, p, chaos, budget) in cells {
            let algo_name = algo.map_or("serial", |a| a.name());
            let run_cell = |write_artifacts: bool| -> StressCell {
                let cfg = RouterConfig {
                    budget: budget.materialize(&probe),
                    ..cfg()
                };
                match algo {
                    None => {
                        // Instrumented even though it is one rank: the
                        // serial time lever is the cell that actually
                        // sheds (parallel gate collectives resync every
                        // boundary), so its dumps carry the shed-rate
                        // series the aggregator trends.
                        let instr = InstrumentConfig {
                            metrics: MetricsConfig::on(),
                            ..opts.instrument()
                        };
                        let (report, traces, metrics) =
                            pgr_mpi::run_instrumented(1, machine, instr, |comm| {
                                let routed = pgr_router::try_route_serial(&circuit, &cfg, comm);
                                let shed = comm.budget_shed_any();
                                let time = comm.now();
                                (routed, shed, time)
                            });
                        let (routed, shed, time) =
                            report.results.into_iter().next().expect("one rank");
                        if write_artifacts {
                            if let Some(dir) = &opts.trace_out {
                                let label = format!(
                                    "stress_{}_serial_none_{}_p1",
                                    family.name(),
                                    budget.name()
                                );
                                let mut run = opts.run_meta(&circuit.name, "serial", 1, &machine);
                                run.scenario = format!("{}/none/{}", spec.name(), budget.name());
                                run.budget_degraded = shed;
                                if let Err(e) = write_traces(
                                    dir,
                                    &label,
                                    &traces,
                                    &report.stats,
                                    &machine,
                                    &run,
                                    &metrics,
                                ) {
                                    eprintln!("trace write failed for {label}: {e}");
                                }
                            }
                        }
                        match routed {
                            Ok(result) => {
                                pgr_router::verify::assert_verified(&circuit, &result);
                                StressCell {
                                    outcome: if shed { "degraded" } else { "routed" },
                                    tracks: Some(result.track_count()),
                                    time_bits: time.to_bits(),
                                    note: if shed {
                                        "shed refinement".into()
                                    } else {
                                        String::new()
                                    },
                                }
                            }
                            Err(e @ RouteError::BudgetExceeded { .. }) => StressCell {
                                outcome: "budget_exceeded",
                                tracks: None,
                                time_bits: time.to_bits(),
                                note: e.to_string(),
                            },
                        }
                    }
                    Some(algo) => {
                        let mut instr = InstrumentConfig {
                            metrics: MetricsConfig::on(),
                            ..opts.instrument()
                        };
                        match chaos {
                            StressChaos::None => {}
                            StressChaos::Messages => {
                                let chaos = ChaosConfig::messages_with_corruption(SEED);
                                instr.fault = Some(Arc::new(ChaosLayer::new(chaos)));
                                instr.reliability = ReliabilityConfig::on();
                            }
                            StressChaos::Kill => {
                                // Kills only: zero out the message faults
                                // so the cell isolates the recovery path.
                                let mut chaos = ChaosConfig::messages_only(SEED);
                                chaos.drop = 0.0;
                                chaos.reorder = 0.0;
                                chaos.duplicate = 0.0;
                                chaos.delay = 0.0;
                                chaos.kills = vec![(p - 1, 2)];
                                instr.fault = Some(Arc::new(ChaosLayer::new(chaos)));
                                instr.reliability = ReliabilityConfig::on();
                            }
                        }
                        let out = pgr_router::route_parallel_guarded(
                            &circuit,
                            &cfg,
                            algo,
                            PartitionKind::PinWeight,
                            p,
                            machine,
                            instr,
                        );
                        if write_artifacts {
                            if let Some(dir) = &opts.trace_out {
                                let label = format!(
                                    "stress_{}_{}_{}_{}_p{p}",
                                    family.name(),
                                    algo.name(),
                                    chaos.name(),
                                    budget.name()
                                );
                                let mut run =
                                    opts.run_meta(&circuit.name, algo.name(), p, &machine);
                                // The cell coordinates ride in the
                                // scenario stamp: every other RunMeta
                                // field is shared across this family's
                                // budget/chaos cells, and the aggregator
                                // keys records by it.
                                run.scenario =
                                    format!("{}/{}/{}", spec.name(), chaos.name(), budget.name());
                                run.degraded = out.degraded;
                                run.budget_degraded = out.budget_degraded;
                                if let Err(e) = write_traces(
                                    dir,
                                    &label,
                                    &out.traces,
                                    &out.stats,
                                    &machine,
                                    &run,
                                    &out.metrics,
                                ) {
                                    eprintln!("trace write failed for {label}: {e}");
                                }
                            }
                        }
                        match out.result {
                            Ok(result) => {
                                pgr_router::verify::assert_verified(&circuit, &result);
                                let degraded = out.degraded || out.budget_degraded;
                                let mut notes = Vec::new();
                                if out.budget_degraded {
                                    notes.push("shed refinement");
                                }
                                if out.degraded {
                                    notes.push("serial fallback");
                                }
                                if chaos == StressChaos::Kill && !out.degraded {
                                    notes.push("recovered");
                                }
                                StressCell {
                                    outcome: if degraded { "degraded" } else { "routed" },
                                    tracks: Some(result.track_count()),
                                    time_bits: out.time.to_bits(),
                                    note: notes.join(", "),
                                }
                            }
                            Err(e @ RouteError::BudgetExceeded { .. }) => StressCell {
                                outcome: "budget_exceeded",
                                tracks: None,
                                time_bits: out.time.to_bits(),
                                note: e.to_string(),
                            },
                        }
                    }
                }
            };

            let first = catch_unwind(AssertUnwindSafe(|| run_cell(true)));
            let second = catch_unwind(AssertUnwindSafe(|| run_cell(false)));
            let cell = match (&first, &second) {
                (Ok(a), Ok(b)) => {
                    if a != b {
                        divergent += 1;
                        eprintln!(
                            "stress: NONDETERMINISTIC cell {} {} {} {}: {a:?} vs {b:?}",
                            spec.name(),
                            algo_name,
                            chaos.name(),
                            budget.name()
                        );
                    }
                    a.clone()
                }
                _ => {
                    panics += 1;
                    StressCell {
                        outcome: "panic",
                        tracks: None,
                        time_bits: 0,
                        note: "routing panicked — see stderr".into(),
                    }
                }
            };
            match cell.outcome {
                "routed" => seen_routed = true,
                "degraded" => {
                    seen_degraded = true;
                    if family == ScenarioFamily::CongestionStress && budget == StressBudget::Time {
                        congestion_shed = true;
                    }
                }
                "budget_exceeded" => seen_exceeded = true,
                _ => {}
            }
            println!(
                "{:<20} {:<9} {:>2} {:<9} {:<10} {:<16} {:>7}  {}",
                family.name(),
                algo_name,
                p,
                chaos.name(),
                budget.name(),
                cell.outcome,
                cell.tracks.map_or("-".to_string(), |t| t.to_string()),
                cell.note
            );
        }
    }

    let mut failures = Vec::new();
    if panics > 0 {
        failures.push(format!("{panics} cell(s) panicked"));
    }
    if divergent > 0 {
        failures.push(format!("{divergent} cell(s) were nondeterministic"));
    }
    if full_matrix {
        if !seen_routed {
            failures.push("no cell routed cleanly".into());
        }
        if !seen_degraded {
            failures.push("no cell degraded gracefully".into());
        }
        if !seen_exceeded {
            failures.push("no cell reported a structured budget error".into());
        }
        if !congestion_shed {
            failures.push("congestion-stress never shed under the time budget".into());
        }
    }
    if failures.is_empty() {
        println!("stress matrix clean: every cell structured, deterministic, panic-free");
        println!();
    } else {
        for f in &failures {
            eprintln!("stress matrix FAILED: {f}");
        }
        std::process::exit(1);
    }
}

/// `repro profile`: cross-rank causal profiles — critical-path
/// extraction and makespan blame attribution for every driver.
///
/// Runs the serial driver at P = 1 and the three parallel algorithms at
/// P ∈ {2, 4} per circuit, always fully instrumented (the profiler
/// consumes the trace whether or not `--trace-out` is set). Each run's
/// matched send→recv happens-before DAG yields the critical path of the
/// makespan; a summary row and the per-phase × rank blame table are
/// printed. Lossless runs are gated in-process: a path that does not
/// sum exactly to the makespan panics, so any smoke invocation doubles
/// as the acceptance check.
///
/// With `--trace-out DIR`, each run additionally writes
/// `<label>.profile.json` (the schema-versioned blame report),
/// `<label>.blame.md` (the markdown table), a Chrome trace annotated
/// with send→recv flow arrows and color-tagged critical-path slices
/// (`<label>.trace.json`), and the usual stats/metrics dumps — so
/// `repro aggregate` over DIR picks up the wait-fraction series.
pub fn profile(opts: &Opts) {
    let machine = MachineModel::sparc_center_1000();
    let cfg = cfg();
    println!("Causal profile: critical-path extraction and makespan blame");
    opts.note_scale();
    println!(
        "{:<34} {:>10} {:>9} {:>9} {:>9} {:>6}",
        "run", "makespan", "compute%", "wait%", "fault%", "segs"
    );
    for c in opts.circuits() {
        let (report, traces, metrics) =
            pgr_mpi::run_instrumented(1, machine, InstrumentConfig::full(), |comm| {
                pgr_router::route_serial(&c, &cfg, comm);
            });
        let label = format!("{}_serial_profile", c.name);
        let run = opts.run_meta(&c.name, "serial", 1, &machine);
        let prof = build_profile(&traces, &machine);
        report_profile(
            opts,
            &label,
            &run,
            &prof,
            &traces,
            &report.stats,
            &metrics,
            &machine,
        );
        for algo in Algorithm::ALL {
            let mut procs: Vec<usize> = [2usize, 4].iter().map(|&p| clamp_procs(p, &c)).collect();
            procs.dedup();
            for p in procs {
                let out = route_parallel_instrumented(
                    &c,
                    &cfg,
                    algo,
                    PartitionKind::PinWeight,
                    p,
                    machine,
                    InstrumentConfig::full(),
                );
                pgr_router::verify::assert_verified(&c, &out.result);
                let label = format!("{}_{}_profile_p{p}", c.name, algo.name());
                let run = opts.run_meta(&c.name, algo.name(), p, &machine);
                let prof = build_profile(&out.traces, &machine);
                report_profile(
                    opts,
                    &label,
                    &run,
                    &prof,
                    &out.traces,
                    &out.stats,
                    &out.metrics,
                    &machine,
                );
            }
        }
    }
    println!();
}

/// Gate one profile, print its summary row and blame table, and write
/// the artifact set when `--trace-out` is given.
#[allow(clippy::too_many_arguments)]
fn report_profile(
    opts: &Opts,
    label: &str,
    run: &RunMeta,
    prof: &Profile,
    traces: &[RankTrace],
    stats: &[RankStats],
    metrics: &[RankMetrics],
    machine: &MachineModel,
) {
    if prof.truncated {
        eprintln!(
            "warning: {label}: trace ring dropped {} event(s); per-phase attribution only",
            prof.dropped_events
        );
    } else {
        // In-process acceptance gate: every smoke run re-checks that
        // the extracted chain partitions the makespan exactly.
        assert!(
            prof.warnings.is_empty()
                && prof.is_contiguous()
                && prof.critical_path_seconds().to_bits() == prof.makespan.to_bits(),
            "{label}: critical path does not partition the makespan ({:?})",
            prof.warnings
        );
    }
    let pct = |class: BlameClass| {
        if prof.makespan > 0.0 {
            100.0 * prof.class_seconds[class.index()] / prof.makespan
        } else {
            0.0
        }
    };
    println!(
        "{:<34} {:>10} {:>8.1}% {:>8.1}% {:>8.1}% {:>6}",
        label,
        fmt_secs(prof.makespan),
        pct(BlameClass::Compute),
        pct(BlameClass::RecvWait),
        pct(BlameClass::Transport) + pct(BlameClass::Recovery) + pct(BlameClass::Degraded),
        prof.critical_path.len()
    );
    match &opts.trace_out {
        Some(dir) => {
            if let Err(e) =
                write_profile_artifacts(dir, label, prof, run, traces, stats, machine, metrics)
            {
                eprintln!("profile write failed for {label}: {e}");
            }
        }
        // No artifact dir: the blame table goes to stdout instead.
        None => print!("{}", prof.blame_markdown(run)),
    }
}

/// Write one profiled run's artifacts: the blame report JSON, the
/// markdown table, the annotated Chrome trace, and the stats/metrics
/// dumps the aggregator consumes. Returns the profile path.
#[allow(clippy::too_many_arguments)]
fn write_profile_artifacts(
    dir: &Path,
    label: &str,
    prof: &Profile,
    run: &RunMeta,
    traces: &[RankTrace],
    stats: &[RankStats],
    machine: &MachineModel,
    metrics: &[RankMetrics],
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let profile_path = dir.join(format!("{label}.profile.json"));
    std::fs::write(&profile_path, prof.to_json(run))?;
    std::fs::write(
        dir.join(format!("{label}.blame.md")),
        prof.blame_markdown(run),
    )?;
    std::fs::write(
        dir.join(format!("{label}.trace.json")),
        chrome_trace_with_path(traces, Some(&prof.critical_path)),
    )?;
    std::fs::write(
        dir.join(format!("{label}.stats.json")),
        stats_json(stats, machine, run),
    )?;
    if !metrics.is_empty() {
        std::fs::write(
            dir.join(format!("{label}.metrics.json")),
            metrics_json(run, metrics),
        )?;
    }
    Ok(profile_path)
}
