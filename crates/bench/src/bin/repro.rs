//! Regenerate the paper's tables and figures.
//!
//! ```text
//! repro [--scale F] [--circuits a,b,c] [--trace-out DIR] <target>...
//!
//! targets: table1 table2 table3 table4 table5
//!          partition-ablation sync-sweep machine-sweep
//!          exact-sync-ablation beta-sweep phase-breakdown
//!          detailed-refinement steiner-ablation comm-matrix all
//! ```
//!
//! `table2`/`table3`/`table4` also emit figures 4/5/6 (the speedup
//! series). `--scale 0.1` runs 10 %-size circuits for a quick look;
//! the default regenerates the full-size evaluation. `--trace-out DIR`
//! makes tracing-aware targets (currently `phase-breakdown`) write
//! per-run Chrome traces (`*.trace.json`, load in `chrome://tracing` or
//! Perfetto) and per-rank stats (`*.stats.json`) into DIR.

use pgr_bench::tables::{self, Opts};
use pgr_router::Algorithm;

fn usage() -> ! {
    eprintln!(
        "usage: repro [--scale F] [--circuits a,b,c] [--trace-out DIR] <target>...\n\
         targets: table1 table2 table3 table4 table5 partition-ablation sync-sweep\n          machine-sweep exact-sync-ablation beta-sweep phase-breakdown detailed-refinement steiner-ablation comm-matrix all"
    );
    std::process::exit(2);
}

fn main() {
    let mut opts = Opts::default();
    let mut targets: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                let v = args.next().unwrap_or_else(|| usage());
                opts.scale = v.parse().unwrap_or_else(|_| usage());
                if !(opts.scale > 0.0 && opts.scale <= 1.0) {
                    eprintln!("--scale must be in (0, 1]");
                    std::process::exit(2);
                }
            }
            "--circuits" => {
                let v = args.next().unwrap_or_else(|| usage());
                opts.filter = Some(v.split(',').map(str::to_string).collect());
            }
            "--trace-out" => {
                let v = args.next().unwrap_or_else(|| usage());
                opts.trace_out = Some(v.into());
            }
            "-h" | "--help" => usage(),
            t => targets.push(t.to_string()),
        }
    }
    if targets.is_empty() {
        usage();
    }
    if targets.iter().any(|t| t == "all") {
        targets = [
            "table1",
            "table2",
            "table3",
            "table4",
            "table5",
            "partition-ablation",
            "sync-sweep",
            "machine-sweep",
            "exact-sync-ablation",
            "beta-sweep",
            "phase-breakdown",
            "detailed-refinement",
            "steiner-ablation",
            "comm-matrix",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }
    for t in &targets {
        match t.as_str() {
            "table1" => tables::table1(&opts),
            "table2" | "figure4" => tables::quality_and_speedup(Algorithm::RowWise, &opts),
            "table3" | "figure5" => tables::quality_and_speedup(Algorithm::NetWise, &opts),
            "table4" | "figure6" => tables::quality_and_speedup(Algorithm::Hybrid, &opts),
            "table5" => tables::table5(&opts),
            "partition-ablation" => tables::partition_ablation(&opts),
            "sync-sweep" => tables::sync_sweep(&opts),
            "machine-sweep" => tables::machine_sweep(&opts),
            "exact-sync-ablation" => tables::exact_sync_ablation(&opts),
            "beta-sweep" => tables::beta_sweep(&opts),
            "phase-breakdown" => tables::phase_breakdown(&opts),
            "detailed-refinement" => tables::detailed_refinement(&opts),
            "steiner-ablation" => tables::steiner_ablation(&opts),
            "comm-matrix" => tables::comm_matrix(&opts),
            other => {
                eprintln!("unknown target '{other}'");
                usage();
            }
        }
    }
}
