//! Regenerate the paper's tables and figures, and aggregate runs.
//!
//! ```text
//! repro [--scale F] [--circuits a,b,c] [--trace-out DIR] <target>...
//!
//! targets: table1 table2 table3 table4 table5
//!          partition-ablation sync-sweep machine-sweep
//!          exact-sync-ablation beta-sweep phase-breakdown
//!          detailed-refinement steiner-ablation comm-matrix
//!          chaos wall-clock profile all
//!
//! repro aggregate [--out FILE] [--md FILE] [--baseline FILE]
//!                 [--tolerance F] <path>...
//! ```
//!
//! `table2`/`table3`/`table4` also emit figures 4/5/6 (the speedup
//! series). `--scale 0.1` runs 10 %-size circuits for a quick look;
//! the default regenerates the full-size evaluation. `--trace-out DIR`
//! makes instrumented targets (`phase-breakdown`, `table2`–`table4`)
//! write per-run Chrome traces (`*.trace.json`, load in
//! `chrome://tracing` or Perfetto), per-rank stats (`*.stats.json`),
//! and per-rank metrics (`*.metrics.json`) into DIR (created if
//! missing).
//!
//! `wall-clock` runs all four drivers in wall-clock execution mode
//! ([`pgr_mpi::ClockMode::Wall`]): ranks run free, and the table shows
//! the deterministic virtual seconds next to the real host seconds of
//! the same run. Results are bit-identical to virtual mode — only the
//! wall measurements are host-dependent. Under `--trace-out` the stats
//! dumps are stamped `"clock":"wall"`.
//!
//! `chaos` is the robustness smoke: every algorithm routed under a
//! seeded drop/delay/reorder/duplicate schedule with the reliable
//! transport on, plus one rank killed at a phase boundary; each
//! degraded result is verified and the recovery counters — including
//! the checkpoint-resume accounting (`recovery.redone_phases`,
//! `recovery.checkpoint.restores`) — are printed (and written to
//! `*.metrics.json` under `--trace-out`). The schedule is overridable:
//! `--kill R@B` (repeatable) kills rank R at phase boundary B, where B
//! is a registry phase name (`coarse`) or its index (`2`) — anything
//! outside the registry is rejected with the valid range and exit
//! code 2 — and `--max-rounds N` / `--min-ranks N` override the
//! recovery-policy bounds, so a single command can demonstrate resume,
//! multi-round recovery, or the forced serial fallback.
//!
//! `profile` is the causal profiler: every driver runs fully
//! instrumented, each run's send→recv matched happens-before DAG yields
//! the critical path of the makespan, and every second on it is blamed
//! on compute, recv-wait, transport, recovery, or the degraded
//! fallback. The summary table and per-phase × rank blame tables print
//! to stdout; under `--trace-out` each run also writes
//! `*.profile.json`, `*.blame.md`, and a Chrome trace with flow arrows
//! plus color-tagged critical-path slices. The path-sum-equals-makespan
//! invariant is asserted in-process on every lossless run.
//!
//! `big-circuit` generates a synthetic instance an order of magnitude
//! beyond the paper's largest (~200k nets at scale 1.0) and routes it
//! serially — the smoke test that the chunked columnar circuit store
//! holds up past the MCNC sizes.
//!
//! `repro bench-check` validates `BENCH_*.json` kernel-bench snapshots
//! (as written by `BENCH_JSON=path cargo bench`): schema version, kind
//! tag, and at least `--min-kernels` entries with positive timings. CI
//! runs it over both the freshly measured file and the committed
//! snapshots, so a truncated or hand-mangled baseline fails fast.
//!
//! `repro aggregate` merges any number of such dumps — files or
//! directories, typically from several independent `--trace-out` runs —
//! into one cross-run report (speedup curves, phase-time trends,
//! quality deltas) printed as markdown (or written with `--md`) and
//! optionally written as JSON with `--out`. With `--baseline FILE` the
//! fresh aggregate is compared against a committed report; any run
//! whose makespan, tracks, or wirelength regresses beyond `--tolerance`
//! (relative, default 0.02) makes the command exit non-zero.

use pgr_bench::aggregate::{aggregate, check_baseline, load_paths};
use pgr_bench::harness::check_bench_json;
use pgr_bench::tables::{self, Opts};
use pgr_circuit::scenarios::ScenarioFamily;
use pgr_mpi::Phase;
use pgr_router::Algorithm;
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!(
        "usage: repro [--scale F] [--circuits a,b,c] [--trace-out DIR]\n             [--kill R@B]... [--max-rounds N] [--min-ranks N]\n             [--family NAME]... <target>...\n\
         targets: table1 table2 table3 table4 table5 partition-ablation sync-sweep\n          machine-sweep exact-sync-ablation beta-sweep phase-breakdown detailed-refinement steiner-ablation comm-matrix chaos wall-clock big-circuit stress profile all\n\
         chaos:  --kill R@B kills rank R at phase boundary B (registry name or index);\n         --max-rounds / --min-ranks bound the recovery policy\n\
         stress: --family restricts the adversarial-workload matrix (repeatable)\n\
         or:    repro aggregate [--out FILE] [--md FILE] [--baseline FILE] [--tolerance F] <path>...\n\
         or:    repro bench-check [--min-kernels N] <file>..."
    );
    std::process::exit(2);
}

/// Parse a `--kill <rank>@<boundary>` spec into `(rank, phase index)`.
/// The boundary names the phase whose entry the rank dies at — either a
/// registry phase name (`coarse`) or its numeric index (`2`) — and is
/// validated against [`Phase::ALL`]; anything outside the registry is a
/// structured error listing the valid boundaries.
fn parse_kill(spec: &str) -> Result<(usize, usize), String> {
    let registry = || {
        Phase::ALL
            .iter()
            .map(|p| format!("{}({})", p.name(), p.index()))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let (rank, boundary) = spec
        .split_once('@')
        .ok_or_else(|| format!("--kill expects <rank>@<boundary>, got '{spec}'"))?;
    let rank: usize = rank
        .parse()
        .map_err(|_| format!("--kill rank '{rank}' is not a number (in '{spec}')"))?;
    let idx = match boundary.parse::<usize>() {
        Ok(i) if i < Phase::ALL.len() => i,
        Ok(i) => {
            return Err(format!(
                "--kill boundary {i} is out of range; the phase registry has \
                 boundaries {}",
                registry()
            ))
        }
        Err(_) => Phase::from_name(boundary)
            .map(|p| p.index())
            .ok_or_else(|| {
                format!(
                    "--kill boundary '{boundary}' is not a registry phase; valid: {}",
                    registry()
                )
            })?,
    };
    Ok((rank, idx))
}

fn fail(msg: &str) -> ! {
    eprintln!("repro: {msg}");
    std::process::exit(2);
}

fn aggregate_main(args: impl Iterator<Item = String>) -> ! {
    let mut out: Option<PathBuf> = None;
    let mut md: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut tolerance = 0.02f64;
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut args = args.peekable();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out = Some(args.next().unwrap_or_else(|| usage()).into()),
            "--md" => md = Some(args.next().unwrap_or_else(|| usage()).into()),
            "--baseline" => baseline = Some(args.next().unwrap_or_else(|| usage()).into()),
            "--tolerance" => {
                let v = args.next().unwrap_or_else(|| usage());
                tolerance = v.parse().unwrap_or_else(|_| usage());
                if !(tolerance >= 0.0 && tolerance.is_finite()) {
                    fail("--tolerance must be a non-negative number");
                }
            }
            "-h" | "--help" => usage(),
            f if f.starts_with('-') => fail(&format!("unknown flag '{f}'")),
            p => paths.push(p.into()),
        }
    }
    if paths.is_empty() {
        usage();
    }
    let records = load_paths(&paths).unwrap_or_else(|e| fail(&e));
    let agg = aggregate(&records);
    eprintln!(
        "aggregated {} run(s) from {} path argument(s)",
        agg.records.len(),
        paths.len()
    );
    if let Some(p) = &out {
        std::fs::write(p, agg.to_json())
            .unwrap_or_else(|e| fail(&format!("cannot write {}: {e}", p.display())));
        eprintln!("aggregate JSON written: {}", p.display());
    }
    let markdown = agg.to_markdown();
    match &md {
        Some(p) => {
            std::fs::write(p, &markdown)
                .unwrap_or_else(|e| fail(&format!("cannot write {}: {e}", p.display())));
            eprintln!("aggregate markdown written: {}", p.display());
        }
        None => print!("{markdown}"),
    }
    if let Some(p) = &baseline {
        let text = std::fs::read_to_string(p)
            .unwrap_or_else(|e| fail(&format!("cannot read baseline {}: {e}", p.display())));
        let regressions = check_baseline(&agg, &text, tolerance).unwrap_or_else(|e| fail(&e));
        if regressions.is_empty() {
            eprintln!(
                "baseline check passed (tolerance {:.1} %)",
                tolerance * 100.0
            );
        } else {
            eprintln!("baseline check FAILED:");
            for r in &regressions {
                eprintln!("  regression: {r}");
            }
            std::process::exit(1);
        }
    }
    std::process::exit(0);
}

fn bench_check_main(args: impl Iterator<Item = String>) -> ! {
    let mut min_kernels = 3usize;
    let mut files: Vec<PathBuf> = Vec::new();
    let mut args = args.peekable();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--min-kernels" => {
                let v = args.next().unwrap_or_else(|| usage());
                min_kernels = v.parse().unwrap_or_else(|_| usage());
            }
            "-h" | "--help" => usage(),
            f if f.starts_with('-') => fail(&format!("unknown flag '{f}'")),
            p => files.push(p.into()),
        }
    }
    if files.is_empty() {
        usage();
    }
    for p in &files {
        let text = std::fs::read_to_string(p)
            .unwrap_or_else(|e| fail(&format!("cannot read {}: {e}", p.display())));
        match check_bench_json(&text, min_kernels) {
            Ok(kernels) => eprintln!("{}: ok ({} kernels)", p.display(), kernels.len()),
            Err(e) => {
                eprintln!("{}: INVALID: {e}", p.display());
                std::process::exit(1);
            }
        }
    }
    std::process::exit(0);
}

fn main() {
    let mut args = std::env::args().skip(1).peekable();
    if args.peek().map(String::as_str) == Some("aggregate") {
        args.next();
        aggregate_main(args);
    }
    if args.peek().map(String::as_str) == Some("bench-check") {
        args.next();
        bench_check_main(args);
    }
    let mut opts = Opts::default();
    let mut targets: Vec<String> = Vec::new();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                let v = args.next().unwrap_or_else(|| usage());
                opts.scale = v.parse().unwrap_or_else(|_| usage());
                if !(opts.scale > 0.0 && opts.scale <= 1.0) {
                    fail("--scale must be in (0, 1]");
                }
            }
            "--circuits" => {
                let v = args.next().unwrap_or_else(|| usage());
                opts.filter = Some(v.split(',').map(str::to_string).collect());
            }
            "--trace-out" => {
                let v = args.next().unwrap_or_else(|| usage());
                let dir: PathBuf = v.into();
                if let Err(e) = std::fs::create_dir_all(&dir) {
                    fail(&format!("cannot create --trace-out {}: {e}", dir.display()));
                }
                opts.trace_out = Some(dir);
            }
            "--kill" => {
                let v = args.next().unwrap_or_else(|| usage());
                opts.kills.push(parse_kill(&v).unwrap_or_else(|e| fail(&e)));
            }
            "--max-rounds" => {
                let v = args.next().unwrap_or_else(|| usage());
                let n: u32 = v
                    .parse()
                    .unwrap_or_else(|_| fail("--max-rounds must be a positive integer"));
                if n == 0 {
                    fail("--max-rounds must be at least 1");
                }
                opts.max_rounds = Some(n);
            }
            "--min-ranks" => {
                let v = args.next().unwrap_or_else(|| usage());
                let n: usize = v
                    .parse()
                    .unwrap_or_else(|_| fail("--min-ranks must be a positive integer"));
                if n == 0 {
                    fail("--min-ranks must be at least 1");
                }
                opts.min_ranks = Some(n);
            }
            "--family" => {
                let v = args.next().unwrap_or_else(|| usage());
                if ScenarioFamily::from_name(&v).is_none() {
                    let registry = ScenarioFamily::ALL
                        .iter()
                        .map(|f| f.name())
                        .collect::<Vec<_>>()
                        .join(", ");
                    fail(&format!(
                        "--family '{v}' is not an adversarial workload family; valid: {registry}"
                    ));
                }
                opts.families.get_or_insert_with(Vec::new).push(v);
            }
            "-h" | "--help" => usage(),
            f if f.starts_with('-') => fail(&format!("unknown flag '{f}'")),
            t => targets.push(t.to_string()),
        }
    }
    if targets.is_empty() {
        usage();
    }
    if targets.iter().any(|t| t == "all") {
        targets = [
            "table1",
            "table2",
            "table3",
            "table4",
            "table5",
            "partition-ablation",
            "sync-sweep",
            "machine-sweep",
            "exact-sync-ablation",
            "beta-sweep",
            "phase-breakdown",
            "detailed-refinement",
            "steiner-ablation",
            "comm-matrix",
            "chaos",
            "wall-clock",
            "profile",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }
    for t in &targets {
        match t.as_str() {
            "table1" => tables::table1(&opts),
            "table2" | "figure4" => tables::quality_and_speedup(Algorithm::RowWise, &opts),
            "table3" | "figure5" => tables::quality_and_speedup(Algorithm::NetWise, &opts),
            "table4" | "figure6" => tables::quality_and_speedup(Algorithm::Hybrid, &opts),
            "table5" => tables::table5(&opts),
            "partition-ablation" => tables::partition_ablation(&opts),
            "sync-sweep" => tables::sync_sweep(&opts),
            "machine-sweep" => tables::machine_sweep(&opts),
            "exact-sync-ablation" => tables::exact_sync_ablation(&opts),
            "beta-sweep" => tables::beta_sweep(&opts),
            "phase-breakdown" => tables::phase_breakdown(&opts),
            "detailed-refinement" => tables::detailed_refinement(&opts),
            "steiner-ablation" => tables::steiner_ablation(&opts),
            "comm-matrix" => tables::comm_matrix(&opts),
            "chaos" => tables::chaos_smoke(&opts),
            "stress" => tables::stress(&opts),
            "wall-clock" => tables::wall_clock(&opts),
            "big-circuit" => tables::big_circuit(&opts),
            "profile" => tables::profile(&opts),
            other => {
                eprintln!("unknown target '{other}'");
                usage();
            }
        }
    }
}
