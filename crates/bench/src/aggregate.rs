//! Cross-run aggregation of `*.stats.json` / `*.metrics.json` dumps.
//!
//! `repro --trace-out DIR` leaves one stats file (virtual times, comm
//! volume, phase breakdown) and one metrics file (quality counters,
//! histograms) per run, each stamped with a [`RunMeta`] and a
//! `schema_version`. This module merges any number of such dumps —
//! typically several independent `repro` invocations at different rank
//! counts — into one cross-run report:
//!
//! * **speedup curves**: every run is matched against the `"serial"`
//!   run of the same (circuit, machine, scale, seed) and reported as
//!   `serial makespan / run makespan`;
//! * **phase-time trends**: the slowest rank's per-phase seconds;
//! * **quality deltas**: tracks / wirelength / feedthroughs from the
//!   merged metric shards, scaled against the serial run.
//!
//! The report renders as JSON (machine-readable, and itself versioned)
//! and as a markdown table. [`check_baseline`] compares a fresh
//! aggregate against a committed one and reports regressions beyond a
//! relative tolerance — the CI gate. Because every number here is
//! virtual time from the deterministic simulation, baselines are stable
//! across hosts: any drift is a real behavior change.

use pgr_obs::{json_escape, merge_ranks, Json, Phase, RankMetrics, RunMeta, SCHEMA_VERSION};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// One run reconstructed from its dump file(s).
#[derive(Debug, Clone)]
pub struct RunRecord {
    pub run: RunMeta,
    /// Slowest rank's final virtual clock (from the stats dump).
    pub makespan: Option<f64>,
    /// Total bytes sent across ranks.
    pub bytes_sent: u64,
    /// Per-phase virtual seconds of the slowest rank, in phase order.
    pub phases: Vec<(String, f64)>,
    /// All ranks' metric shards merged into one (from the metrics dump).
    pub metrics: Option<RankMetrics>,
}

/// Aggregation key: the run coordinates minus the rank count.
fn series_key(run: &RunMeta) -> (String, String, u64, u64) {
    (
        run.circuit.clone(),
        run.machine.clone(),
        run.scale.to_bits(),
        run.seed,
    )
}

/// Full identity of one run (one record per distinct value). The
/// scenario string participates because stress-matrix cells share every
/// other coordinate: the same adversarial circuit is driven by the same
/// algorithm at the same rank count under different budget levers and
/// chaos schedules, and only the cell-stamped scenario tells the
/// resulting dumps apart.
type RunKey = (String, String, usize, String, u64, u64, String);

fn run_key(run: &RunMeta) -> RunKey {
    (
        run.circuit.clone(),
        run.algorithm.clone(),
        run.procs,
        run.machine.clone(),
        run.scale.to_bits(),
        run.seed,
        run.scenario.clone(),
    )
}

fn ctx(path: &Path, what: &str) -> String {
    format!("{}: {what}", path.display())
}

fn parse_run_meta(v: &Json, path: &Path) -> Result<RunMeta, String> {
    let run = v.get("run").ok_or_else(|| ctx(path, "missing \"run\""))?;
    let str_field = |name: &str| -> Result<String, String> {
        run.get(name)
            .and_then(|f| f.as_str())
            .map(str::to_string)
            .ok_or_else(|| ctx(path, &format!("run.{name} missing or not a string")))
    };
    Ok(RunMeta {
        circuit: str_field("circuit")?,
        algorithm: str_field("algorithm")?,
        procs: run
            .get("procs")
            .and_then(|f| f.as_u64())
            .ok_or_else(|| ctx(path, "run.procs missing"))? as usize,
        machine: str_field("machine")?,
        scale: run
            .get("scale")
            .and_then(|f| f.as_f64())
            .ok_or_else(|| ctx(path, "run.scale missing"))?,
        seed: run
            .get("seed")
            .and_then(|f| f.as_u64())
            .ok_or_else(|| ctx(path, "run.seed missing"))?,
        // Absent in dumps from writers predating the flag — and in every
        // fault-free dump, which omits it.
        degraded: run
            .get("degraded")
            .and_then(|f| f.as_bool())
            .unwrap_or(false),
        // Absent in dumps from writers predating the field — and in every
        // virtual-mode dump, which omits it.
        clock: run
            .get("clock")
            .and_then(|f| f.as_str())
            .unwrap_or("virtual")
            .to_string(),
        // Absent in every dump not produced by the scenario generator.
        scenario: run
            .get("scenario")
            .and_then(|f| f.as_str())
            .unwrap_or("")
            .to_string(),
        // Absent in every run that stayed inside its budget.
        budget_degraded: run
            .get("budget_degraded")
            .and_then(|f| f.as_bool())
            .unwrap_or(false),
    })
}

/// Parse one dump file, checking `schema_version` and `kind`. Files an
/// older (or newer) writer produced are rejected with a clear error
/// instead of being silently mis-read.
fn parse_dump(path: &Path, text: &str) -> Result<(RunMeta, Json, String), String> {
    let v = Json::parse(text).map_err(|e| ctx(path, &format!("unparseable JSON ({e})")))?;
    let version = v
        .get("schema_version")
        .and_then(|f| f.as_u64())
        .ok_or_else(|| {
            ctx(
                path,
                "missing \"schema_version\" — not an aggregatable dump",
            )
        })?;
    if version != SCHEMA_VERSION as u64 {
        return Err(ctx(
            path,
            &format!("schema_version {version} (this reader understands {SCHEMA_VERSION})"),
        ));
    }
    let kind = v
        .get("kind")
        .and_then(|f| f.as_str())
        .ok_or_else(|| ctx(path, "missing \"kind\""))?
        .to_string();
    let run = parse_run_meta(&v, path)?;
    Ok((run, v, kind))
}

/// Reject phase names outside the [`Phase`] registry: a dump naming an
/// unknown phase was produced by a pipeline that bypassed the engine (or
/// by a different registry), and aggregating it would silently produce
/// trend series nothing else can align with.
fn check_registry_phase(name: &str, path: &Path) -> Result<(), String> {
    if Phase::from_name(name).is_none() {
        return Err(ctx(
            path,
            &format!("phase \"{name}\" is not in the phase registry"),
        ));
    }
    Ok(())
}

/// Apply one stats dump. Last-wins per kind: the simulation is
/// deterministic, so two dumps carrying the same run identity (say, a
/// phase-breakdown pass and a speedup pass at the same rank count) hold
/// identical numbers, and overwriting beats double-counting.
fn apply_stats(rec: &mut RunRecord, v: &Json, path: &Path) -> Result<(), String> {
    rec.makespan = Some(
        v.get("makespan")
            .and_then(|f| f.as_f64())
            .ok_or_else(|| ctx(path, "stats missing \"makespan\""))?,
    );
    let ranks = v
        .get("ranks")
        .and_then(|f| f.as_arr())
        .ok_or_else(|| ctx(path, "stats missing \"ranks\""))?;
    rec.bytes_sent = 0;
    let mut slowest: Option<(f64, Vec<(String, f64)>)> = None;
    for r in ranks {
        rec.bytes_sent += r.get("bytes_sent").and_then(|f| f.as_u64()).unwrap_or(0);
        let time = r.get("time").and_then(|f| f.as_f64()).unwrap_or(0.0);
        if slowest.as_ref().is_none_or(|(t, _)| time > *t) {
            let phases: Vec<(String, f64)> = r
                .get("phases")
                .and_then(|f| f.as_arr())
                .map(|ps| {
                    ps.iter()
                        .filter_map(|p| {
                            Some((
                                p.get("name")?.as_str()?.to_string(),
                                p.get("seconds")?.as_f64()?,
                            ))
                        })
                        .collect()
                })
                .unwrap_or_default();
            slowest = Some((time, phases));
        }
    }
    if let Some((_, phases)) = slowest {
        for (name, _) in &phases {
            check_registry_phase(name, path)?;
        }
        rec.phases = phases;
    }
    Ok(())
}

fn parse_histogram(h: &Json, path: &Path) -> Result<pgr_obs::Histogram, String> {
    let field = |name: &str| {
        h.get(name)
            .and_then(|f| f.as_u64())
            .ok_or_else(|| ctx(path, &format!("histogram missing \"{name}\"")))
    };
    let sparse: Vec<(usize, u64)> = h
        .get("buckets")
        .and_then(|f| f.as_arr())
        .ok_or_else(|| ctx(path, "histogram missing \"buckets\""))?
        .iter()
        .map(|pair| {
            let p = pair
                .as_arr()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| ctx(path, "bucket is not an [index, count] pair"))?;
            Ok((
                p[0].as_u64()
                    .ok_or_else(|| ctx(path, "bucket index not an integer"))?
                    as usize,
                p[1].as_u64()
                    .ok_or_else(|| ctx(path, "bucket count not an integer"))?,
            ))
        })
        .collect::<Result<_, String>>()?;
    pgr_obs::Histogram::from_parts(
        field("count")?,
        field("sum")?,
        field("min")?,
        field("max")?,
        &sparse,
    )
    .map_err(|e| ctx(path, &e))
}

/// Parse one `{"counters":…,"gauges":…,"histograms":…}` scope (a rank's
/// cumulative maps, or one phase window) into `into`.
fn parse_metric_maps(scope: &Json, into: &mut RankMetrics, path: &Path) -> Result<(), String> {
    if let Some(cs) = scope.get("counters").and_then(|f| f.as_obj()) {
        for (name, val) in cs {
            let v = val
                .as_u64()
                .ok_or_else(|| ctx(path, &format!("counter \"{name}\" not an integer")))?;
            into.counters.push((name.clone(), v));
        }
    }
    if let Some(gs) = scope.get("gauges").and_then(|f| f.as_obj()) {
        for (name, val) in gs {
            let v = val
                .as_f64()
                .ok_or_else(|| ctx(path, &format!("gauge \"{name}\" not a number")))?;
            into.gauges.push((name.clone(), v));
        }
    }
    if let Some(hs) = scope.get("histograms").and_then(|f| f.as_obj()) {
        for (name, val) in hs {
            into.histograms
                .push((name.clone(), parse_histogram(val, path)?));
        }
    }
    Ok(())
}

fn apply_metrics(rec: &mut RunRecord, v: &Json, path: &Path) -> Result<(), String> {
    let ranks = v
        .get("ranks")
        .and_then(|f| f.as_arr())
        .ok_or_else(|| ctx(path, "metrics missing \"ranks\""))?;
    let mut shards = Vec::with_capacity(ranks.len());
    for r in ranks {
        let rank = r
            .get("rank")
            .and_then(|f| f.as_u64())
            .ok_or_else(|| ctx(path, "rank entry missing \"rank\""))? as usize;
        let mut m = RankMetrics::empty(rank);
        parse_metric_maps(r, &mut m, path)?;
        if let Some(ps) = r.get("phases").and_then(|f| f.as_obj()) {
            for (name, scope) in ps {
                check_registry_phase(name, path)?;
                let mut w = RankMetrics::empty(rank);
                parse_metric_maps(scope, &mut w, path)?;
                m.windows.push((name.clone(), w));
            }
        }
        shards.push(m);
    }
    rec.metrics = Some(merge_ranks(&shards));
    Ok(())
}

/// Load every dump under `paths` (directories are scanned — not
/// recursively — for `*.stats.json` / `*.metrics.json`; explicit file
/// paths must match one of those suffixes). Dumps sharing a [`RunMeta`]
/// merge into one [`RunRecord`]. Any unreadable, unparseable, or
/// version-mismatched file fails the whole load with an error naming
/// the file — aggregation over silently dropped inputs is worse than no
/// aggregation.
pub fn load_paths(paths: &[PathBuf]) -> Result<Vec<RunRecord>, String> {
    let mut files: Vec<PathBuf> = Vec::new();
    for p in paths {
        if p.is_dir() {
            let mut entries: Vec<PathBuf> = std::fs::read_dir(p)
                .map_err(|e| ctx(p, &format!("unreadable directory ({e})")))?
                .filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|f| is_dump(f))
                .collect();
            entries.sort();
            files.extend(entries);
        } else if is_dump(p) {
            files.push(p.clone());
        } else {
            return Err(ctx(
                p,
                "not a *.stats.json / *.metrics.json dump (or a directory of them)",
            ));
        }
    }
    if files.is_empty() {
        return Err("no *.stats.json / *.metrics.json dumps found".to_string());
    }
    let mut by_key: BTreeMap<RunKey, RunRecord> = BTreeMap::new();
    for f in &files {
        let text = std::fs::read_to_string(f).map_err(|e| ctx(f, &format!("unreadable ({e})")))?;
        let (run, v, kind) = parse_dump(f, &text)?;
        let rec = by_key.entry(run_key(&run)).or_insert_with(|| RunRecord {
            run,
            makespan: None,
            bytes_sent: 0,
            phases: Vec::new(),
            metrics: None,
        });
        match kind.as_str() {
            "stats" => apply_stats(rec, &v, f)?,
            "metrics" => apply_metrics(rec, &v, f)?,
            other => return Err(ctx(f, &format!("unknown dump kind \"{other}\""))),
        }
    }
    Ok(by_key.into_values().collect())
}

fn is_dump(p: &Path) -> bool {
    p.file_name()
        .and_then(|n| n.to_str())
        .is_some_and(|n| n.ends_with(".stats.json") || n.ends_with(".metrics.json"))
}

/// One phase's trend entry in an aggregated row: the slowest rank's
/// virtual seconds (from the stats dump) joined with the rank-merged
/// window counters (from the metrics dump). Either half may be absent
/// when only one dump kind was loaded for the run.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseAgg {
    pub name: String,
    pub seconds: Option<f64>,
    /// Rank-summed recv-wait seconds inside this phase's window (from
    /// the `mpi.recv_wait_micros` counter), when metrics were loaded.
    pub wait_seconds: Option<f64>,
    /// Merged per-phase window counters, sorted by name.
    pub counters: Vec<(String, u64)>,
}

/// One aggregated row: a run plus its derived cross-run numbers.
#[derive(Debug, Clone)]
pub struct AggRecord {
    pub run: RunMeta,
    pub makespan: Option<f64>,
    /// `serial makespan / this makespan`, when the matching serial run
    /// is present in the input set.
    pub speedup: Option<f64>,
    pub tracks: Option<u64>,
    /// `tracks / serial tracks` (the paper's scaled-track quality).
    pub scaled_tracks: Option<f64>,
    pub wirelength: Option<u64>,
    pub feedthroughs: Option<u64>,
    /// Phases recovery rounds had to re-run, rank-summed
    /// (`recovery.redone_phases`). Absent on fault-free runs; on chaos
    /// runs it trends how much work checkpoint resume saved over a full
    /// restart.
    pub redone_phases: Option<u64>,
    /// Refinement chunks dropped under a `max_phase_seconds` budget,
    /// rank-summed (`budget.shed_events`). Absent on runs that never
    /// shed; together with the `budget_degraded` stamp in [`RunMeta`]
    /// this is the graceful-shedding trend the stress matrix feeds.
    pub shed_events: Option<u64>,
    pub load_imbalance: Option<f64>,
    /// Fraction of the run's total rank-seconds spent blocked in recv
    /// past the modeled overhead: `Σ mpi.recv_wait_micros / 1e6`
    /// divided by `procs × makespan`. Needs both dump kinds; 0 for a
    /// run that never waited.
    pub wait_fraction: Option<f64>,
    pub bytes_sent: u64,
    /// Per-phase trend series, in [`Phase`] registry order.
    pub phases: Vec<PhaseAgg>,
}

/// The cross-run report.
#[derive(Debug, Clone)]
pub struct Aggregate {
    pub records: Vec<AggRecord>,
}

/// Metric names mirrored from the router (kept as literals so the
/// aggregator builds without a `pgr-router` dependency).
const TRACKS: &str = "route.tracks";
const WIRELENGTH: &str = "route.wirelength";
const FEEDTHROUGHS: &str = "route.feedthroughs";
const LOAD_IMBALANCE: &str = "parallel.load_imbalance";
/// Mirrored from `pgr_mpi::RECV_WAIT_MICROS` (same literal-over-import
/// rationale as the router names above).
const RECV_WAIT_MICROS: &str = "mpi.recv_wait_micros";
/// Mirrored from `pgr_obs::recovery_names::REDONE_PHASES`.
const REDONE_PHASES: &str = "recovery.redone_phases";
/// Mirrored from `pgr_obs::budget_names::SHED_EVENTS`.
const SHED_EVENTS: &str = "budget.shed_events";

/// Derive the cross-run series from loaded records: speedups and quality
/// scaled against each series' `"serial"` run.
pub fn aggregate(records: &[RunRecord]) -> Aggregate {
    let serial: BTreeMap<(String, String, u64, u64), &RunRecord> = records
        .iter()
        .filter(|r| r.run.algorithm == "serial")
        .map(|r| (series_key(&r.run), r))
        .collect();
    let rows = records
        .iter()
        .map(|r| {
            let base = serial.get(&series_key(&r.run));
            let m = r.metrics.as_ref();
            let tracks = m.and_then(|m| m.counter(TRACKS));
            let base_tracks = base.and_then(|b| b.metrics.as_ref()?.counter(TRACKS));
            // Join the stats-side phase seconds with the metrics-side
            // phase windows, in registry order.
            let phases: Vec<PhaseAgg> = Phase::ALL
                .iter()
                .filter_map(|p| {
                    let seconds = r
                        .phases
                        .iter()
                        .find(|(n, _)| n == p.name())
                        .map(|(_, s)| *s);
                    let window = m.and_then(|mm| mm.window(p.name()));
                    if seconds.is_none() && window.is_none() {
                        return None;
                    }
                    let counters: Vec<(String, u64)> =
                        window.map(|w| w.counters.clone()).unwrap_or_default();
                    let wait_seconds = window.map(|w| {
                        w.counters
                            .iter()
                            .find(|(n, _)| n == RECV_WAIT_MICROS)
                            .map_or(0.0, |(_, v)| *v as f64 / 1e6)
                    });
                    Some(PhaseAgg {
                        name: p.name().to_string(),
                        seconds,
                        wait_seconds,
                        counters,
                    })
                })
                .collect();
            AggRecord {
                run: r.run.clone(),
                makespan: r.makespan,
                speedup: match (base.and_then(|b| b.makespan), r.makespan) {
                    (Some(b), Some(t)) if t > 0.0 => Some(b / t),
                    _ => None,
                },
                tracks,
                scaled_tracks: match (tracks, base_tracks) {
                    (Some(t), Some(b)) if b > 0 => Some(t as f64 / b as f64),
                    _ => None,
                },
                wirelength: m.and_then(|m| m.counter(WIRELENGTH)),
                feedthroughs: m.and_then(|m| m.counter(FEEDTHROUGHS)),
                redone_phases: m.and_then(|m| m.counter(REDONE_PHASES)),
                shed_events: m.and_then(|m| m.counter(SHED_EVENTS)),
                load_imbalance: m.and_then(|m| m.gauge(LOAD_IMBALANCE)),
                wait_fraction: match (m, r.makespan) {
                    (Some(mm), Some(t)) if t > 0.0 && r.run.procs > 0 => Some(
                        mm.counter(RECV_WAIT_MICROS).unwrap_or(0) as f64
                            / 1e6
                            / (r.run.procs as f64 * t),
                    ),
                    _ => None,
                },
                bytes_sent: r.bytes_sent,
                phases,
            }
        })
        .collect();
    Aggregate { records: rows }
}

fn opt_u64(v: Option<u64>) -> String {
    v.map_or("null".to_string(), |x| x.to_string())
}

fn opt_f64(v: Option<f64>) -> String {
    match v {
        Some(x) if x.is_finite() => format!("{x}"),
        _ => "null".to_string(),
    }
}

impl Aggregate {
    /// Machine-readable report, itself schema-versioned so a future
    /// aggregator can gate on it.
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self
            .records
            .iter()
            .map(|r| {
                let phases: Vec<String> = r
                    .phases
                    .iter()
                    .map(|p| {
                        let counters: Vec<String> = p
                            .counters
                            .iter()
                            .map(|(n, v)| format!("\"{}\":{v}", json_escape(n)))
                            .collect();
                        format!(
                            "{{\"name\":\"{}\",\"seconds\":{},\"wait_seconds\":{},\"counters\":{{{}}}}}",
                            json_escape(&p.name),
                            opt_f64(p.seconds),
                            opt_f64(p.wait_seconds),
                            counters.join(",")
                        )
                    })
                    .collect();
                format!(
                    "{{\"run\":{},\"makespan\":{},\"speedup\":{},\"tracks\":{},\"scaled_tracks\":{},\"wirelength\":{},\"feedthroughs\":{},\"redone_phases\":{},\"shed_events\":{},\"load_imbalance\":{},\"wait_fraction\":{},\"bytes_sent\":{},\"phases\":[{}]}}",
                    r.run.to_json(),
                    opt_f64(r.makespan),
                    opt_f64(r.speedup),
                    opt_u64(r.tracks),
                    opt_f64(r.scaled_tracks),
                    opt_u64(r.wirelength),
                    opt_u64(r.feedthroughs),
                    opt_u64(r.redone_phases),
                    opt_u64(r.shed_events),
                    opt_f64(r.load_imbalance),
                    opt_f64(r.wait_fraction),
                    r.bytes_sent,
                    phases.join(",")
                )
            })
            .collect();
        format!(
            "{{\"schema_version\":{},\"kind\":\"aggregate\",\"shed_rate\":{},\"records\":[\n{}\n]}}\n",
            SCHEMA_VERSION,
            opt_f64(self.shed_rate()),
            rows.join(",\n")
        )
    }

    /// Fraction of the aggregated runs that completed `budget_degraded`
    /// — the cross-run shed rate. `None` when the aggregate is empty.
    pub fn shed_rate(&self) -> Option<f64> {
        if self.records.is_empty() {
            return None;
        }
        let shed = self
            .records
            .iter()
            .filter(|r| r.run.budget_degraded)
            .count();
        Some(shed as f64 / self.records.len() as f64)
    }

    /// Human-readable markdown: one speedup/quality table per
    /// (circuit, machine, scale) series, rank counts as columns.
    pub fn to_markdown(&self) -> String {
        let mut out = String::from("# Cross-run aggregate\n");
        // Group rows by series, then by algorithm.
        let mut series: BTreeMap<(String, String, u64, u64), Vec<&AggRecord>> = BTreeMap::new();
        for r in &self.records {
            series.entry(series_key(&r.run)).or_default().push(r);
        }
        for ((circuit, machine, scale_bits, seed), rows) in &series {
            let scale = f64::from_bits(*scale_bits);
            out.push_str(&format!(
                "\n## {circuit} — {machine}, scale {scale}, seed {seed}\n\n"
            ));
            let mut procs: Vec<usize> = rows.iter().map(|r| r.run.procs).collect();
            procs.sort_unstable();
            procs.dedup();
            out.push_str("| algorithm |");
            for p in &procs {
                out.push_str(&format!(" speedup P={p} |"));
            }
            for p in &procs {
                out.push_str(&format!(" sc.tracks P={p} |"));
            }
            out.push('\n');
            out.push_str(&"|---".repeat(1 + 2 * procs.len()));
            out.push_str("|\n");
            let mut algos: Vec<&str> = rows.iter().map(|r| r.run.algorithm.as_str()).collect();
            algos.sort_unstable();
            algos.dedup();
            for algo in algos {
                out.push_str(&format!("| {algo} |"));
                let cell =
                    |v: Option<f64>| v.map_or(" — |".to_string(), |x| format!(" {x:.2} |"));
                for &p in &procs {
                    let rec = rows
                        .iter()
                        .find(|r| r.run.algorithm == algo && r.run.procs == p);
                    out.push_str(&cell(rec.and_then(|r| r.speedup)));
                }
                for &p in &procs {
                    let rec = rows
                        .iter()
                        .find(|r| r.run.algorithm == algo && r.run.procs == p);
                    out.push_str(&cell(rec.and_then(|r| r.scaled_tracks)));
                }
                out.push('\n');
            }
            // Wait-fraction / imbalance trend: how much of each run's
            // rank-seconds went to recv blocking, and how skewed the
            // partition was — the two levers behind every lost speedup.
            let mut with_wait: Vec<&&AggRecord> = rows
                .iter()
                .filter(|r| r.wait_fraction.is_some() || r.load_imbalance.is_some())
                .collect();
            with_wait.sort_by_key(|r| (r.run.algorithm.clone(), r.run.procs));
            if !with_wait.is_empty() {
                out.push_str("\n| algorithm | procs | wait % | imbalance |\n|---|---|---|---|\n");
                for r in &with_wait {
                    out.push_str(&format!(
                        "| {} | {} | {} | {} |\n",
                        r.run.algorithm,
                        r.run.procs,
                        r.wait_fraction
                            .map_or("—".to_string(), |w| format!("{:.1}", w * 100.0)),
                        r.load_imbalance
                            .map_or("—".to_string(), |x| format!("{x:.2}")),
                    ));
                }
            }
            // Budget/shed trend: which cells completed by shedding
            // refinement under a budget (and how many chunks they
            // dropped) versus hitting a hard breach — the graceful-
            // degradation series the stress matrix feeds. Scenario-
            // stamped rows print the full cell coordinates.
            let mut with_shed: Vec<&&AggRecord> = rows
                .iter()
                .filter(|r| {
                    r.run.budget_degraded || r.shed_events.is_some() || !r.run.scenario.is_empty()
                })
                .collect();
            with_shed
                .sort_by_key(|r| (r.run.algorithm.clone(), r.run.procs, r.run.scenario.clone()));
            if !with_shed.is_empty() {
                let degraded = with_shed.iter().filter(|r| r.run.budget_degraded).count();
                out.push_str(&format!(
                    "\nShed rate: {degraded} of {} budget/scenario runs completed budget-degraded\n",
                    with_shed.len()
                ));
                out.push_str(
                    "\n| algorithm | procs | scenario | shed events | budget degraded |\n|---|---|---|---|---|\n",
                );
                for r in &with_shed {
                    out.push_str(&format!(
                        "| {} | {} | {} | {} | {} |\n",
                        r.run.algorithm,
                        r.run.procs,
                        if r.run.scenario.is_empty() {
                            "—"
                        } else {
                            &r.run.scenario
                        },
                        r.shed_events.map_or("—".to_string(), |s| s.to_string()),
                        if r.run.budget_degraded { "yes" } else { "no" },
                    ));
                }
            }
            // Phase-time trend for the slowest-rank breakdown.
            let mut with_phases: Vec<&&AggRecord> =
                rows.iter().filter(|r| !r.phases.is_empty()).collect();
            with_phases.sort_by_key(|r| (r.run.algorithm.clone(), r.run.procs));
            if !with_phases.is_empty() {
                out.push_str("\n| algorithm | procs | slowest-rank phases (s) |\n|---|---|---|\n");
                for r in &with_phases {
                    let ps: Vec<String> = r
                        .phases
                        .iter()
                        .filter_map(|p| Some(format!("{} {:.2}", p.name, p.seconds?)))
                        .collect();
                    out.push_str(&format!(
                        "| {} | {} | {} |\n",
                        r.run.algorithm,
                        r.run.procs,
                        ps.join(", ")
                    ));
                }
            }
            // Per-phase quality trend: the routing/parallelism/recovery
            // counters each phase window contributed. The recovery
            // series makes the redone-work saving of checkpoint resume
            // visible per failed phase.
            let quality_counter = |n: &str| {
                n.starts_with("route.") || n.starts_with("parallel.") || n.starts_with("recovery.")
            };
            let with_counters: Vec<&&AggRecord> = with_phases
                .iter()
                .filter(|r| {
                    r.phases
                        .iter()
                        .any(|p| p.counters.iter().any(|(n, _)| quality_counter(n)))
                })
                .copied()
                .collect();
            if !with_counters.is_empty() {
                out.push_str(
                    "\n| algorithm | procs | phase | route/parallel/recovery counters |\n|---|---|---|---|\n",
                );
                for r in with_counters {
                    for p in &r.phases {
                        let cs: Vec<String> = p
                            .counters
                            .iter()
                            .filter(|(n, _)| quality_counter(n))
                            .map(|(n, v)| format!("{n} {v}"))
                            .collect();
                        if cs.is_empty() {
                            continue;
                        }
                        out.push_str(&format!(
                            "| {} | {} | {} | {} |\n",
                            r.run.algorithm,
                            r.run.procs,
                            p.name,
                            cs.join(", ")
                        ));
                    }
                }
            }
        }
        out
    }
}

/// One regression found by [`check_baseline`].
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    pub run: RunMeta,
    pub what: String,
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{} P={} ({}): {}",
            self.run.circuit, self.run.algorithm, self.run.procs, self.run.machine, self.what
        )
    }
}

/// Compare a fresh aggregate against a committed baseline (the JSON
/// produced by [`Aggregate::to_json`]). A run regresses when its
/// makespan, tracks, or wirelength exceeds the baseline by more than
/// `tolerance` (relative), or when a baseline run is missing entirely.
/// Improvements never flag. Returns the regression list; an error means
/// the baseline file itself is unusable.
pub fn check_baseline(
    current: &Aggregate,
    baseline_text: &str,
    tolerance: f64,
) -> Result<Vec<Regression>, String> {
    let v = Json::parse(baseline_text).map_err(|e| format!("baseline unparseable: {e}"))?;
    match v.get("schema_version").and_then(|f| f.as_u64()) {
        Some(ver) if ver == SCHEMA_VERSION as u64 => {}
        Some(ver) => {
            return Err(format!(
                "baseline schema_version {ver} (this reader understands {SCHEMA_VERSION})"
            ))
        }
        None => return Err("baseline missing schema_version".to_string()),
    }
    if v.get("kind").and_then(|f| f.as_str()) != Some("aggregate") {
        return Err("baseline is not an aggregate report".to_string());
    }
    let base_records = v
        .get("records")
        .and_then(|f| f.as_arr())
        .ok_or_else(|| "baseline missing records".to_string())?;
    let path = Path::new("<baseline>");
    let mut regressions = Vec::new();
    for b in base_records {
        let run = parse_run_meta(b, path)?;
        let Some(cur) = current
            .records
            .iter()
            .find(|r| run_key(&r.run) == run_key(&run))
        else {
            regressions.push(Regression {
                run,
                what: "present in baseline but missing from this aggregate".to_string(),
            });
            continue;
        };
        let mut check_f = |what: &str, base: Option<f64>, now: Option<f64>| {
            if let (Some(b), Some(n)) = (base, now) {
                if b > 0.0 && n > b * (1.0 + tolerance) {
                    regressions.push(Regression {
                        run: run.clone(),
                        what: format!(
                            "{what} {n:.6} exceeds baseline {b:.6} by more than {:.1} %",
                            tolerance * 100.0
                        ),
                    });
                }
            }
        };
        check_f(
            "makespan",
            b.get("makespan").and_then(|f| f.as_f64()),
            cur.makespan,
        );
        check_f(
            "tracks",
            b.get("tracks").and_then(|f| f.as_f64()),
            cur.tracks.map(|t| t as f64),
        );
        check_f(
            "wirelength",
            b.get("wirelength").and_then(|f| f.as_f64()),
            cur.wirelength.map(|w| w as f64),
        );
        // Higher-is-worse efficiency series: a run that waits longer or
        // balances worse than the baseline regressed even if quality and
        // makespan stayed inside tolerance.
        check_f(
            "wait_fraction",
            b.get("wait_fraction").and_then(|f| f.as_f64()),
            cur.wait_fraction,
        );
        check_f(
            "load_imbalance",
            b.get("load_imbalance").and_then(|f| f.as_f64()),
            cur.load_imbalance,
        );
        // Robustness series: a chaos run that redoes more phases than
        // the baseline lost resume coverage (e.g. a boundary stopped
        // committing portably and the round fell back to a restart).
        check_f(
            "redone_phases",
            b.get("redone_phases").and_then(|f| f.as_f64()),
            cur.redone_phases.map(|x| x as f64),
        );
        // Graceful-shedding series: a budgeted run that drops more
        // refinement chunks than its baseline lost quality headroom
        // even though it still completed inside its budget.
        check_f(
            "shed_events",
            b.get("shed_events").and_then(|f| f.as_f64()),
            cur.shed_events.map(|x| x as f64),
        );
        // Per-phase series: virtual seconds and the phase-scoped
        // wirelength must not drift past tolerance either — a regression
        // hiding inside one phase while the totals stay flat is exactly
        // what the windows exist to catch.
        for bp in b.get("phases").and_then(|f| f.as_arr()).unwrap_or(&[]) {
            let Some(name) = bp.get("name").and_then(|f| f.as_str()) else {
                continue;
            };
            let cp = cur.phases.iter().find(|p| p.name == name);
            check_f(
                &format!("phase {name} seconds"),
                bp.get("seconds").and_then(|f| f.as_f64()),
                cp.and_then(|p| p.seconds),
            );
            check_f(
                &format!("phase {name} wait seconds"),
                bp.get("wait_seconds").and_then(|f| f.as_f64()),
                cp.and_then(|p| p.wait_seconds),
            );
            check_f(
                &format!("phase {name} wirelength"),
                bp.get("counters")
                    .and_then(|c| c.get(WIRELENGTH))
                    .and_then(|f| f.as_f64()),
                cp.and_then(|p| {
                    p.counters
                        .iter()
                        .find(|(n, _)| n == WIRELENGTH)
                        .map(|(_, v)| *v as f64)
                }),
            );
        }
    }
    Ok(regressions)
}
