//! A minimal wall-clock micro-benchmark harness (std-only).
//!
//! The workspace's `[[bench]]` targets use `harness = false`, so each
//! bench binary owns its `main`. This module supplies the measurement
//! loop: per benchmark it calibrates an iteration count to a fixed
//! measurement window, takes several samples, and reports the median and
//! minimum nanoseconds per iteration. Invoke via `cargo bench`; a
//! substring argument filters which benchmarks run.
//!
//! This measures *host* time. The paper's tables come from the
//! deterministic virtual clocks (`repro`); these benches exist to watch
//! the real cost of the kernels and the substrate.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque value barrier — prevents the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Version stamp of the `BENCH_*.json` snapshot format. Bench
/// snapshots version independently of the pgr-obs dump schema
/// (`pgr_obs::SCHEMA_VERSION`): the observability dumps gain fields as
/// the metrics surface grows, while the snapshot layout below only
/// changes when *this* document does — committed `BENCH_*.json`
/// baselines must not be invalidated by unrelated dump evolution.
pub const BENCH_SCHEMA_VERSION: u32 = 2;

/// Target measurement window per sample.
const SAMPLE_WINDOW: Duration = Duration::from_millis(25);
/// Samples per benchmark (median reported).
const SAMPLES: usize = 9;

/// Handle passed to each benchmark body; call [`Bencher::iter`] with the
/// code under test.
pub struct Bencher {
    ns_per_iter: Vec<f64>,
}

/// Next calibration batch size after a run of `batch` iterations took
/// `elapsed`. Growth is clamped to 8× per step (a noisy near-threshold
/// reading must not catapult the batch past the window) and targets the
/// window exactly — the old 1.2× overshoot made every sample run long.
fn next_batch(batch: u64, elapsed: Duration) -> u64 {
    if elapsed < Duration::from_micros(50) {
        batch.saturating_mul(8)
    } else {
        let scale = SAMPLE_WINDOW.as_secs_f64() / elapsed.as_secs_f64();
        let target = (batch as f64 * scale).ceil() as u64;
        target.clamp(batch + 1, batch.saturating_mul(8))
    }
}

impl Bencher {
    /// Measure `f`: calibrate an iteration count to the sample window,
    /// then time [`SAMPLES`] batches. The calibration run that first
    /// fills the window already *is* a full sample at the final batch
    /// size, so it is kept as the first sample rather than discarded —
    /// for slow bodies this saves a whole extra window.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        self.ns_per_iter.clear();
        let mut batch: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                std_black_box(f());
            }
            let elapsed = t.elapsed();
            if elapsed >= SAMPLE_WINDOW || batch >= 1 << 30 {
                self.ns_per_iter
                    .push(elapsed.as_nanos() as f64 / batch as f64);
                break;
            }
            batch = next_batch(batch, elapsed);
        }
        for _ in 1..SAMPLES {
            let t = Instant::now();
            for _ in 0..batch {
                std_black_box(f());
            }
            self.ns_per_iter
                .push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
    }
}

/// The bench runner: owns the CLI filter and prints one line per
/// benchmark.
pub struct Harness {
    filter: Option<String>,
    results: Vec<(String, f64, f64)>,
}

impl Harness {
    /// Build from `cargo bench` argv: ignores harness flags (`--bench`,
    /// `--exact`, dashed options); the first free-standing argument
    /// becomes a substring filter.
    pub fn from_args() -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Harness {
            filter,
            results: Vec::new(),
        }
    }

    /// Run one benchmark (if it passes the filter) and print its timing.
    pub fn bench<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            ns_per_iter: Vec::new(),
        };
        f(&mut b);
        if b.ns_per_iter.is_empty() {
            println!("{name:<44} (no measurement — body never called iter)");
            return;
        }
        b.ns_per_iter
            .sort_by(|a, b| a.partial_cmp(b).expect("times are finite"));
        let median = b.ns_per_iter[b.ns_per_iter.len() / 2];
        let min = b.ns_per_iter[0];
        println!(
            "{name:<44} median {:>12}  min {:>12}",
            fmt_ns(median),
            fmt_ns(min)
        );
        self.results.push((name.to_string(), median, min));
    }

    /// Print a trailing summary and, when `BENCH_JSON` names a path,
    /// write the machine-readable snapshot there (the committed
    /// `BENCH_<pr>.json` files are produced this way).
    pub fn finish(&self) {
        println!("\n{} benchmark(s) run", self.results.len());
        if let Ok(path) = std::env::var("BENCH_JSON") {
            if !path.is_empty() {
                std::fs::write(&path, bench_json(&self.results))
                    .unwrap_or_else(|e| panic!("cannot write BENCH_JSON {path}: {e}"));
                println!("bench JSON written: {path}");
            }
        }
    }
}

/// Render bench results as the `BENCH_*.json` snapshot document:
/// `{"schema_version":…,"kind":"bench","samples":…,"kernels":[…]}`.
pub fn bench_json(results: &[(String, f64, f64)]) -> String {
    let kernels: Vec<String> = results
        .iter()
        .map(|(name, median, min)| {
            format!(
                "{{\"name\":\"{}\",\"median_ns\":{median:.1},\"min_ns\":{min:.1}}}",
                pgr_obs::json_escape(name)
            )
        })
        .collect();
    format!(
        "{{\"schema_version\":{},\"kind\":\"bench\",\"samples\":{},\"kernels\":[\n{}\n]}}\n",
        BENCH_SCHEMA_VERSION,
        SAMPLES,
        kernels.join(",\n")
    )
}

/// Validate a `BENCH_*.json` snapshot: schema version, kind tag, and at
/// least `min_kernels` kernel entries, each with a non-empty name and
/// positive finite timings. Returns the kernel names on success.
pub fn check_bench_json(text: &str, min_kernels: usize) -> Result<Vec<String>, String> {
    use pgr_obs::Json;
    let v = Json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let version = v
        .get("schema_version")
        .and_then(|f| f.as_u64())
        .ok_or("missing schema_version")?;
    if version != BENCH_SCHEMA_VERSION as u64 {
        return Err(format!(
            "schema_version {version} (reader understands {BENCH_SCHEMA_VERSION})"
        ));
    }
    if v.get("kind").and_then(|f| f.as_str()) != Some("bench") {
        return Err("kind is not \"bench\"".into());
    }
    let kernels = v
        .get("kernels")
        .and_then(|f| f.as_arr())
        .ok_or("missing kernels array")?;
    if kernels.len() < min_kernels {
        return Err(format!(
            "only {} kernel(s), expected at least {min_kernels}",
            kernels.len()
        ));
    }
    let mut names = Vec::with_capacity(kernels.len());
    for k in kernels {
        let name = k
            .get("name")
            .and_then(|f| f.as_str())
            .filter(|n| !n.is_empty())
            .ok_or("kernel entry without a name")?;
        for field in ["median_ns", "min_ns"] {
            let ns = k
                .get(field)
                .and_then(|f| f.as_f64())
                .ok_or_else(|| format!("kernel '{name}' missing {field}"))?;
            if !(ns.is_finite() && ns > 0.0) {
                return Err(format!("kernel '{name}' has non-positive {field}"));
            }
        }
        names.push(name.to_string());
    }
    Ok(names)
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_ns_picks_sane_units() {
        assert_eq!(fmt_ns(12.0), "12.0 ns");
        assert_eq!(fmt_ns(12_500.0), "12.50 µs");
        assert_eq!(fmt_ns(3_400_000.0), "3.40 ms");
        assert_eq!(fmt_ns(2.5e9), "2.500 s");
    }

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher {
            ns_per_iter: Vec::new(),
        };
        b.iter(|| black_box(1u64 + 1));
        assert_eq!(b.ns_per_iter.len(), SAMPLES);
        assert!(b.ns_per_iter.iter().all(|&t| t >= 0.0));
    }

    #[test]
    fn slow_body_runs_exactly_samples_times() {
        // Regression: a body that alone exceeds the window breaks
        // calibration at batch = 1, and that run must count as the first
        // sample — the old loop threw it away and ran SAMPLES + 1 times.
        let mut calls = 0usize;
        let mut b = Bencher {
            ns_per_iter: Vec::new(),
        };
        b.iter(|| {
            calls += 1;
            std::thread::sleep(SAMPLE_WINDOW);
        });
        assert_eq!(calls, SAMPLES, "calibration run reused as a sample");
        assert_eq!(b.ns_per_iter.len(), SAMPLES);
        let window_ns = SAMPLE_WINDOW.as_nanos() as f64;
        assert!(b.ns_per_iter.iter().all(|&t| t >= window_ns));
    }

    #[test]
    fn bench_json_roundtrips_through_the_checker() {
        let results = vec![
            ("mst_prim/32".to_string(), 1234.5, 1100.0),
            ("density_profile/counts_into/4096".to_string(), 9.9, 9.1),
        ];
        let doc = bench_json(&results);
        let names = check_bench_json(&doc, 2).expect("fresh snapshot validates");
        assert_eq!(names, ["mst_prim/32", "density_profile/counts_into/4096"]);
        assert!(check_bench_json(&doc, 3).is_err(), "min_kernels enforced");
    }

    #[test]
    fn checker_rejects_malformed_snapshots() {
        assert!(check_bench_json("not json", 0).is_err());
        assert!(
            check_bench_json(
                "{\"schema_version\":999,\"kind\":\"bench\",\"kernels\":[]}",
                0
            )
            .is_err(),
            "unknown schema version refused"
        );
        assert!(
            check_bench_json(&bench_json(&[("x".into(), 0.0, 0.0)]), 1).is_err(),
            "zero timings refused"
        );
        let doc = bench_json(&[]).replace("\"bench\"", "\"metrics\"");
        assert!(check_bench_json(&doc, 0).is_err(), "wrong kind refused");
    }

    #[test]
    fn calibration_growth_is_clamped() {
        // A noisy near-threshold reading (60 µs suggests a ~417× jump)
        // may grow the batch at most 8× per step.
        assert_eq!(next_batch(1, Duration::from_micros(60)), 8);
        // Below the threshold: plain 8× growth.
        assert_eq!(next_batch(4, Duration::from_micros(10)), 32);
        // Near the window the batch aims exactly at it — no 1.2×
        // overshoot (the old code would have picked 125 here).
        assert_eq!(next_batch(100, Duration::from_millis(24)), 105);
        // Progress is guaranteed even when the scale rounds to 1.
        assert!(next_batch(100, Duration::from_micros(24_990)) > 100);
    }
}
