//! A minimal wall-clock micro-benchmark harness (std-only).
//!
//! The workspace's `[[bench]]` targets use `harness = false`, so each
//! bench binary owns its `main`. This module supplies the measurement
//! loop: per benchmark it calibrates an iteration count to a fixed
//! measurement window, takes several samples, and reports the median and
//! minimum nanoseconds per iteration. Invoke via `cargo bench`; a
//! substring argument filters which benchmarks run.
//!
//! This measures *host* time. The paper's tables come from the
//! deterministic virtual clocks (`repro`); these benches exist to watch
//! the real cost of the kernels and the substrate.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque value barrier — prevents the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Target measurement window per sample.
const SAMPLE_WINDOW: Duration = Duration::from_millis(25);
/// Samples per benchmark (median reported).
const SAMPLES: usize = 9;

/// Handle passed to each benchmark body; call [`Bencher::iter`] with the
/// code under test.
pub struct Bencher {
    ns_per_iter: Vec<f64>,
}

impl Bencher {
    /// Measure `f`: calibrate an iteration count to the sample window,
    /// then time [`SAMPLES`] batches.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Calibrate: grow the batch until it fills the window.
        let mut batch: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                std_black_box(f());
            }
            let elapsed = t.elapsed();
            if elapsed >= SAMPLE_WINDOW || batch >= 1 << 30 {
                break;
            }
            // Aim directly for the window once we have a signal.
            batch = if elapsed < Duration::from_micros(50) {
                batch * 8
            } else {
                let scale = SAMPLE_WINDOW.as_secs_f64() / elapsed.as_secs_f64();
                ((batch as f64 * scale * 1.2) as u64).max(batch + 1)
            };
        }
        self.ns_per_iter.clear();
        for _ in 0..SAMPLES {
            let t = Instant::now();
            for _ in 0..batch {
                std_black_box(f());
            }
            self.ns_per_iter
                .push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
    }
}

/// The bench runner: owns the CLI filter and prints one line per
/// benchmark.
pub struct Harness {
    filter: Option<String>,
    ran: usize,
}

impl Harness {
    /// Build from `cargo bench` argv: ignores harness flags (`--bench`,
    /// `--exact`, dashed options); the first free-standing argument
    /// becomes a substring filter.
    pub fn from_args() -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Harness { filter, ran: 0 }
    }

    /// Run one benchmark (if it passes the filter) and print its timing.
    pub fn bench<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            ns_per_iter: Vec::new(),
        };
        f(&mut b);
        if b.ns_per_iter.is_empty() {
            println!("{name:<44} (no measurement — body never called iter)");
            return;
        }
        b.ns_per_iter
            .sort_by(|a, b| a.partial_cmp(b).expect("times are finite"));
        let median = b.ns_per_iter[b.ns_per_iter.len() / 2];
        let min = b.ns_per_iter[0];
        println!(
            "{name:<44} median {:>12}  min {:>12}",
            fmt_ns(median),
            fmt_ns(min)
        );
        self.ran += 1;
    }

    /// Print a trailing summary (call at the end of `main`).
    pub fn finish(&self) {
        println!("\n{} benchmark(s) run", self.ran);
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_ns_picks_sane_units() {
        assert_eq!(fmt_ns(12.0), "12.0 ns");
        assert_eq!(fmt_ns(12_500.0), "12.50 µs");
        assert_eq!(fmt_ns(3_400_000.0), "3.40 ms");
        assert_eq!(fmt_ns(2.5e9), "2.500 s");
    }

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher {
            ns_per_iter: Vec::new(),
        };
        b.iter(|| black_box(1u64 + 1));
        assert_eq!(b.ns_per_iter.len(), SAMPLES);
        assert!(b.ns_per_iter.iter().all(|&t| t >= 0.0));
    }
}
