//! Benchmark harness: regenerates every table and figure of the paper.
//!
//! The `repro` binary drives [`tables`]; wall-clock micro-benches (see
//! [`harness`]) live in `benches/`. Everything runs on synthetic
//! MCNC-shaped circuits (see
//! `pgr-circuit::mcnc`) over the simulated SparcCenter 1000 / Paragon
//! machine models, so all reported runtimes and speedups are
//! deterministic virtual times.

pub mod aggregate;
pub mod harness;
pub mod tables;

use pgr_circuit::mcnc::{Mcnc, ALL};
use pgr_circuit::Circuit;
use pgr_mpi::{Comm, MachineModel};
use pgr_router::{route_serial, RouterConfig, RoutingResult};

/// Default seed of every reproduction run.
pub const SEED: u64 = 1997;

/// The benchmark set at a given scale (1.0 = the paper's full sizes),
/// optionally filtered by circuit name.
pub fn circuits(scale: f64, filter: Option<&[String]>) -> Vec<Circuit> {
    ALL.iter()
        .filter(|m| {
            filter
                .map(|f| f.iter().any(|n| n == m.name()))
                .unwrap_or(true)
        })
        .map(|m| {
            if scale >= 1.0 {
                m.circuit()
            } else {
                m.circuit_scaled(scale)
            }
        })
        .collect()
}

/// One serial baseline: result, simulated seconds, peak modeled memory.
pub struct SerialBaseline {
    pub result: RoutingResult,
    pub time: f64,
    pub peak_mem: u64,
}

/// Run the serial router on `machine`.
pub fn serial_baseline(
    circuit: &Circuit,
    cfg: &RouterConfig,
    machine: MachineModel,
) -> SerialBaseline {
    let mut comm = Comm::solo(machine);
    let result = route_serial(circuit, cfg, &mut comm);
    pgr_router::verify::assert_verified(circuit, &result);
    SerialBaseline {
        result,
        time: comm.now(),
        peak_mem: comm.peak_mem(),
    }
}

/// Pretty seconds.
pub fn fmt_secs(t: f64) -> String {
    if t >= 100.0 {
        format!("{t:.0}")
    } else if t >= 10.0 {
        format!("{t:.1}")
    } else {
        format!("{t:.2}")
    }
}

/// Re-export of the benchmark identities.
pub fn all_mcnc() -> [Mcnc; 6] {
    ALL
}
