//! Facade crate: re-exports the full public API of the workspace.
pub use pgr_channel as channel;
pub use pgr_circuit as circuit;
pub use pgr_geom as geom;
pub use pgr_mpi as mpi;
pub use pgr_obs as obs;
pub use pgr_router as router;
