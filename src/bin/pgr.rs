//! `pgr` — command-line global router.
//!
//! ```text
//! pgr generate <circuit> [--scale F] [--seed N] -o FILE   write a benchmark netlist
//! pgr stats    <FILE>                                     print circuit statistics
//! pgr route    <FILE> [options]                           route a netlist
//!
//! route options:
//!   --algorithm serial|row-wise|net-wise|hybrid   (default serial)
//!   --procs N                                     (default 4; ignored for serial)
//!   --machine smp|dmp|ideal                       (default smp)
//!   --partition center|locus|density|pin-weight   (default pin-weight)
//!   --seed N                                      (default 1)
//!   --csv                                         machine-readable output
//!   --detailed                                    run the left-edge channel router
//!   --heatmap                                     ASCII congestion heatmap
//!   --svg FILE                                    write an SVG chip plot
//!   --verify                                      re-check the solution
//! ```

use pgr::circuit::format::from_text;
use pgr::circuit::mcnc::{Mcnc, ALL};
use pgr::circuit::{format, Circuit};
use pgr::mpi::{Comm, MachineModel};
use pgr::router::{
    route_parallel, route_serial, verify, Algorithm, PartitionKind, RouterConfig, RoutingResult,
};
use std::process::exit;

fn die(msg: &str) -> ! {
    eprintln!("pgr: {msg}");
    exit(2)
}

fn usage() -> ! {
    eprintln!(
        "usage:\n  pgr generate <circuit> [--scale F] [--seed N] -o FILE\n  pgr stats <FILE>\n  pgr route <FILE> [--algorithm A] [--procs N] [--machine M] [--partition P] [--seed N] [--csv] [--verify]\n\ncircuits: {}",
        ALL.map(|m| m.name()).join(", ")
    );
    exit(2)
}

struct Args {
    positional: Vec<String>,
    flags: std::collections::HashMap<String, String>,
    switches: std::collections::HashSet<String>,
}

fn parse_args(valued: &[&str], boolean: &[&str]) -> Args {
    let mut positional = Vec::new();
    let mut flags = std::collections::HashMap::new();
    let mut switches = std::collections::HashSet::new();
    let mut it = std::env::args().skip(2);
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            if boolean.contains(&name) {
                switches.insert(name.to_string());
            } else if valued.contains(&name) {
                let v = it
                    .next()
                    .unwrap_or_else(|| die(&format!("--{name} needs a value")));
                flags.insert(name.to_string(), v);
            } else {
                die(&format!("unknown option --{name}"));
            }
        } else if a == "-o" {
            let v = it.next().unwrap_or_else(|| die("-o needs a path"));
            flags.insert("o".into(), v);
        } else {
            positional.push(a);
        }
    }
    Args {
        positional,
        flags,
        switches,
    }
}

fn load(path: &str) -> Circuit {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
    from_text(&text).unwrap_or_else(|e| die(&format!("cannot parse {path}: {e}")))
}

fn cmd_generate() {
    let args = parse_args(&["scale", "seed"], &[]);
    let name = args.positional.first().unwrap_or_else(|| usage());
    let m = Mcnc::from_name(name).unwrap_or_else(|| die(&format!("unknown circuit '{name}'")));
    let scale: f64 = args
        .flags
        .get("scale")
        .map(|s| s.parse().unwrap_or_else(|_| die("bad --scale")))
        .unwrap_or(1.0);
    let mut cfg = if scale >= 1.0 {
        m.config()
    } else {
        m.config_scaled(scale)
    };
    if let Some(seed) = args.flags.get("seed") {
        cfg.seed = seed.parse().unwrap_or_else(|_| die("bad --seed"));
    }
    let circuit = pgr::circuit::generate(&cfg);
    let out = args
        .flags
        .get("o")
        .unwrap_or_else(|| die("generate needs -o FILE"));
    std::fs::write(out, format::to_text(&circuit))
        .unwrap_or_else(|e| die(&format!("cannot write {out}: {e}")));
    let s = circuit.stats();
    eprintln!(
        "wrote {out}: {} rows, {} cells, {} nets, {} pins",
        s.rows, s.cells, s.nets, s.pins
    );
}

fn cmd_stats() {
    let args = parse_args(&[], &[]);
    let path = args.positional.first().unwrap_or_else(|| usage());
    let c = load(path);
    let s = c.stats();
    println!("name           {}", s.name);
    println!("rows           {}", s.rows);
    println!("cells          {}", s.cells);
    println!("pins           {}", s.pins);
    println!("nets           {}", s.nets);
    println!("core width     {}", s.width);
    println!("max net degree {}", s.max_net_degree);
    println!("equiv. pins    {}", s.switchable_pins);
    println!(
        "est. memory    {:.1} MB",
        c.estimated_routing_bytes() as f64 / (1 << 20) as f64
    );
}

fn print_result(result: &RoutingResult, time: f64, procs: usize, algo: &str, csv: bool) {
    if csv {
        println!("circuit,algorithm,procs,tracks,area,wirelength,feedthroughs,spans,sim_seconds");
        println!(
            "{},{},{},{},{},{},{},{},{:.3}",
            result.circuit,
            algo,
            procs,
            result.track_count(),
            result.area(),
            result.wirelength,
            result.feedthroughs,
            result.span_count(),
            time
        );
    } else {
        println!(
            "routed '{}' with {algo} on {procs} simulated processor(s):",
            result.circuit
        );
        println!("  tracks        {}", result.track_count());
        println!("  area          {}", result.area());
        println!("  wirelength    {}", result.wirelength);
        println!("  feedthroughs  {}", result.feedthroughs);
        println!("  spans         {}", result.span_count());
        println!("  sim. time     {time:.2} s");
    }
}

fn cmd_route() {
    let args = parse_args(
        &["algorithm", "procs", "machine", "partition", "seed", "svg"],
        &["csv", "verify", "detailed", "heatmap"],
    );
    let path = args.positional.first().unwrap_or_else(|| usage());
    let circuit = load(path);

    let machine = match args
        .flags
        .get("machine")
        .map(String::as_str)
        .unwrap_or("smp")
    {
        "smp" => MachineModel::sparc_center_1000(),
        "dmp" => MachineModel::intel_paragon(),
        "ideal" => MachineModel::ideal(),
        m => die(&format!("unknown machine '{m}' (smp|dmp|ideal)")),
    };
    let partition = match args
        .flags
        .get("partition")
        .map(String::as_str)
        .unwrap_or("pin-weight")
    {
        "center" => PartitionKind::Center,
        "locus" => PartitionKind::Locus,
        "density" => PartitionKind::Density,
        "pin-weight" => PartitionKind::PinWeight,
        p => die(&format!("unknown partition '{p}'")),
    };
    let seed: u64 = args
        .flags
        .get("seed")
        .map(|s| s.parse().unwrap_or_else(|_| die("bad --seed")))
        .unwrap_or(1);
    let procs: usize = args
        .flags
        .get("procs")
        .map(|s| s.parse().unwrap_or_else(|_| die("bad --procs")))
        .unwrap_or(4);
    let cfg = RouterConfig::with_seed(seed);
    let algo_name = args
        .flags
        .get("algorithm")
        .map(String::as_str)
        .unwrap_or("serial")
        .to_string();

    let (result, time, procs) = match algo_name.as_str() {
        "serial" => {
            let mut comm = Comm::solo(machine);
            let r = route_serial(&circuit, &cfg, &mut comm);
            (r, comm.now(), 1)
        }
        other => {
            let algo = Algorithm::ALL
                .into_iter()
                .find(|a| a.name() == other)
                .unwrap_or_else(|| {
                    die(&format!(
                        "unknown algorithm '{other}' (serial|row-wise|net-wise|hybrid)"
                    ))
                });
            let procs = procs.min(circuit.num_rows()).max(1);
            let out = route_parallel(&circuit, &cfg, algo, partition, procs, machine);
            if !out.fits_memory {
                eprintln!(
                    "warning: a rank's modeled working set exceeds the machine's node memory"
                );
            }
            (out.result, out.time, procs)
        }
    };

    if args.switches.contains("verify") {
        verify::assert_verified(&circuit, &result);
        eprintln!(
            "solution verified: {} spans re-checked",
            result.span_count()
        );
    }
    print_result(
        &result,
        time,
        procs,
        &algo_name,
        args.switches.contains("csv"),
    );
    if let Some(svg_path) = args.flags.get("svg") {
        let svg =
            pgr::router::plot::render_svg(&result, &pgr::router::plot::PlotOptions::default());
        std::fs::write(svg_path, &svg)
            .unwrap_or_else(|e| die(&format!("cannot write {svg_path}: {e}")));
        eprintln!("wrote chip plot to {svg_path} ({} bytes)", svg.len());
    }
    if args.switches.contains("heatmap") {
        println!("congestion heatmap (channels bottom-up, 0-9 scaled to the chip peak):");
        print!("{}", pgr::router::analysis::heatmap(&result, 96));
        let report = pgr::router::analysis::analyze(&result);
        let hot = report.hotspots();
        println!("hottest channels:");
        for c in hot.iter().take(3) {
            println!(
                "  channel {:>3}: peak {} (column {}), mean {:.1}, {} spans",
                c.channel, c.peak, c.peak_column, c.mean, c.spans
            );
        }
        match report.worst_spikiness() {
            Some(s) => println!("worst channel spikiness (peak/mean): {s:.2}"),
            None => println!("worst channel spikiness: n/a (no routed wire)"),
        }
    }
    if args.switches.contains("detailed") {
        let d = pgr::router::detailed::route_channels(&result);
        assert!(d.validate(), "detailed routing found a short");
        println!(
            "detailed (left-edge) routing: {} tracks across {} channels (metric said {}), mean utilization {:.2}",
            d.track_count(),
            d.channels.len(),
            result.track_count(),
            d.mean_utilization()
        );
    }
}

fn main() {
    match std::env::args().nth(1).as_deref() {
        Some("generate") => cmd_generate(),
        Some("stats") => cmd_stats(),
        Some("route") => cmd_route(),
        Some("-h") | Some("--help") | None => usage(),
        Some(other) => die(&format!("unknown command '{other}'")),
    }
}
