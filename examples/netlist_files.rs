//! Netlist file I/O: save a generated circuit to the plain-text v1
//! format, reload it, and confirm the reloaded circuit routes to exactly
//! the same solution — the workflow for pinning down and sharing a
//! routing test case.
//!
//! ```text
//! cargo run --release --example netlist_files [path]
//! ```

use pgr::circuit::format::{from_text, to_text};
use pgr::circuit::{generate, GeneratorConfig};
use pgr::mpi::{Comm, MachineModel};
use pgr::router::{route_serial, RouterConfig};

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "/tmp/pgr-demo.netlist".to_string());
    let circuit = generate(&GeneratorConfig::small("file-demo", 2024));

    let text = to_text(&circuit);
    std::fs::write(&path, &text).expect("write netlist");
    println!(
        "wrote {} ({} lines, {} bytes)",
        path,
        text.lines().count(),
        text.len()
    );

    let reloaded =
        from_text(&std::fs::read_to_string(&path).expect("read back")).expect("parse netlist");
    assert_eq!(
        circuit.stats(),
        reloaded.stats(),
        "stats survive the roundtrip"
    );

    let cfg = RouterConfig::with_seed(5);
    let a = route_serial(&circuit, &cfg, &mut Comm::solo(MachineModel::ideal()));
    let b = route_serial(&reloaded, &cfg, &mut Comm::solo(MachineModel::ideal()));
    assert_eq!(a, b, "identical circuits route identically");

    println!("reloaded circuit routes to the identical solution:");
    println!(
        "  tracks = {}, area = {}, wirelength = {}",
        b.track_count(),
        b.area(),
        b.wirelength
    );

    // Show the head of the file so the format is visible.
    println!();
    println!("file head:");
    for line in text.lines().take(8) {
        println!("  {line}");
    }
    println!("  ...");
}
