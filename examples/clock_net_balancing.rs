//! Why the pin-number-weight partition exists (§5).
//!
//! avq.large carries clock line nets with thousands of pins while 99 %
//! of its nets are tiny. Building a net's approximate Steiner tree is
//! Θ(pins²), so whichever rank owns a giant net does quadratically more
//! step-1 work than everyone else — unless the partition weighs nets by
//! `pins^β` and deals the giants round-robin.
//!
//! This example partitions a clock-heavy circuit with all four §5
//! heuristics and prints each rank's pin count and Θ(d²) Steiner cost,
//! then shows the end-to-end effect on the hybrid algorithm's runtime.
//!
//! ```text
//! cargo run --release --example clock_net_balancing
//! ```

use pgr::circuit::mcnc::Mcnc;
use pgr::circuit::RowPartition;
use pgr::mpi::{Comm, MachineModel};
use pgr::router::parallel::partition::{partition_nets, pins_per_owner, steiner_cost_per_owner};
use pgr::router::{route_parallel, route_serial, Algorithm, PartitionKind, RouterConfig};

fn main() {
    let circuit = Mcnc::AvqLarge.circuit_scaled(0.25);
    let max_deg = circuit.nets().map(|n| n.degree()).max().unwrap();
    let small = circuit.nets().filter(|n| n.degree() <= 5).count();
    println!(
        "{}: {} nets, biggest has {} pins, {:.0} % of nets have ≤5 pins",
        circuit.name,
        circuit.num_nets(),
        max_deg,
        small as f64 / circuit.num_nets() as f64 * 100.0
    );

    let parts = 8;
    let rows = RowPartition::balanced(&circuit, parts);
    println!();
    println!(
        "{:<12} {:>28} {:>34}",
        "partition", "pins per rank (min..max)", "steiner d² cost per rank (max/min)"
    );
    for kind in PartitionKind::ALL {
        let owner = partition_nets(&circuit, kind, &rows, parts, 1.6);
        let pins = pins_per_owner(&circuit, &owner, parts);
        let costs = steiner_cost_per_owner(&circuit, &owner, parts);
        let imbalance =
            *costs.iter().max().unwrap() as f64 / (*costs.iter().min().unwrap()).max(1) as f64;
        println!(
            "{:<12} {:>12}..{:<14} {:>25.2}x",
            kind.name(),
            pins.iter().min().unwrap(),
            pins.iter().max().unwrap(),
            imbalance
        );
    }

    // End-to-end: the imbalance shows up as hybrid runtime.
    let cfg = RouterConfig::with_seed(1997);
    let machine = MachineModel::sparc_center_1000();
    let mut comm = Comm::solo(machine);
    let serial = route_serial(&circuit, &cfg, &mut comm);
    let t_serial = comm.now();
    println!();
    println!("hybrid algorithm, 8 ranks:");
    println!(
        "{:<12} {:>9} {:>9} {:>10}",
        "partition", "time(s)", "speedup", "sc.tracks"
    );
    for kind in PartitionKind::ALL {
        let out = route_parallel(&circuit, &cfg, Algorithm::Hybrid, kind, parts, machine);
        println!(
            "{:<12} {:>9.1} {:>9.2} {:>10.3}",
            kind.name(),
            out.time,
            t_serial / out.time,
            out.result.scaled_tracks(&serial)
        );
    }
    println!();
    println!("pin-number-weight keeps the clock nets from serializing step 1 (§5).");
}
