//! Quickstart: generate a small standard-cell circuit, route it with the
//! serial TWGR pipeline, and print the quality metrics the paper reports.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pgr::circuit::{generate, GeneratorConfig};
use pgr::mpi::{Comm, MachineModel};
use pgr::router::{route_serial, RouterConfig};

fn main() {
    // A ~900-pin circuit with 8 cell rows. Fully deterministic per seed.
    let circuit = generate(&GeneratorConfig::small("quickstart", 42));
    let stats = circuit.stats();
    println!(
        "circuit '{}': {} rows, {} cells, {} nets, {} pins",
        stats.name, stats.rows, stats.cells, stats.nets, stats.pins
    );

    // Route serially on the simulated SparcCenter 1000; the communicator
    // tracks virtual time and modeled memory as it goes.
    let mut comm = Comm::solo(MachineModel::sparc_center_1000());
    let result = route_serial(&circuit, &RouterConfig::with_seed(7), &mut comm);

    println!();
    println!("routing finished:");
    println!("  total tracks     : {}", result.track_count());
    println!("  chip area        : {}", result.area());
    println!("  wirelength       : {}", result.wirelength);
    println!("  feedthroughs     : {}", result.feedthroughs);
    println!("  horizontal spans : {}", result.span_count());
    println!("  simulated time   : {:.2} s", comm.now());
    println!(
        "  modeled memory   : {:.1} MB",
        comm.peak_mem() as f64 / (1 << 20) as f64
    );
    println!();
    println!("channel densities (bottom to top):");
    for (i, d) in result.channel_density.iter().enumerate() {
        println!(
            "  channel {i:>2}: {d:>4} {}",
            "#".repeat((*d as usize).min(60))
        );
    }
}
