//! Platform study: the same hybrid routing run on the paper's two
//! evaluation platforms (SparcCenter 1000 SMP and Intel Paragon DMP)
//! plus an idealized zero-cost network, showing how machine parameters
//! shape speedups — and how the Paragon's 32 MB/node memory cap rules
//! out serial runs of big designs while the row-partitioned parallel
//! algorithm still fits (Table 5's point).
//!
//! ```text
//! cargo run --release --example platform_study [scale]
//! ```

use pgr::circuit::mcnc::Mcnc;
use pgr::mpi::{Comm, MachineModel};
use pgr::router::{route_parallel, route_serial, Algorithm, PartitionKind, RouterConfig};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25);
    let circuit = if scale >= 1.0 {
        Mcnc::AvqSmall.circuit()
    } else {
        Mcnc::AvqSmall.circuit_scaled(scale)
    };
    let cfg = RouterConfig::with_seed(1997);

    let mut ideal_net = MachineModel::sparc_center_1000();
    ideal_net.latency = 0.0;
    ideal_net.sec_per_byte = 0.0;
    ideal_net.send_overhead = 0.0;
    ideal_net.recv_overhead = 0.0;
    ideal_net.name = "zero-cost-net";

    for machine in [
        MachineModel::sparc_center_1000(),
        MachineModel::intel_paragon(),
        ideal_net,
    ] {
        let mut comm = Comm::solo(machine);
        let _serial = route_serial(&circuit, &cfg, &mut comm);
        let t_serial = comm.now();
        let serial_fits = machine.fits_in_node(comm.peak_mem());
        println!("=== {} ===", machine.name);
        println!(
            "serial: {:.1} s, {:.1} MB modeled{}",
            t_serial,
            comm.peak_mem() as f64 / (1 << 20) as f64,
            if serial_fits {
                ""
            } else {
                "  ** exceeds node memory — infeasible on this platform **"
            }
        );
        println!(
            "{:>6} {:>10} {:>9} {:>14}",
            "procs", "time(s)", "speedup", "max rank mem"
        );
        for procs in [2usize, 4, 8, 16] {
            let procs = procs.min(circuit.num_rows());
            let out = route_parallel(
                &circuit,
                &cfg,
                Algorithm::Hybrid,
                PartitionKind::PinWeight,
                procs,
                machine,
            );
            println!(
                "{:>6} {:>10.1} {:>9.2} {:>11.1} MB{}",
                procs,
                out.time,
                t_serial / out.time,
                out.stats.iter().map(|s| s.peak_mem).max().unwrap() as f64 / (1 << 20) as f64,
                if out.fits_memory { "" } else { " (!)" }
            );
        }
        println!();
    }
    println!("serial tracks: {} — identical routing problem on every platform; only time and memory differ.", {
        let r = route_serial(&circuit, &cfg, &mut Comm::solo(MachineModel::ideal()));
        r.track_count()
    });
}
