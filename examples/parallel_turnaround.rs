//! The paper's motivating scenario (§1): "for contemporary designs
//! containing 100,000 cells and nets, global routers can easily take
//! several hours" — parallel processing cuts the turnaround.
//!
//! Routes an MCNC-class circuit with all three parallel algorithms at
//! 1–8 processors on the simulated SparcCenter 1000 and prints the
//! runtime / quality trade-off each algorithm offers.
//!
//! ```text
//! cargo run --release --example parallel_turnaround [scale]
//! ```
//!
//! `scale` defaults to 1.0 (the full-size biomed instance); pass e.g.
//! 0.25 for a quicker, smaller run.

use pgr::circuit::mcnc::Mcnc;
use pgr::mpi::{Comm, MachineModel};
use pgr::router::{route_parallel, route_serial, Algorithm, PartitionKind, RouterConfig};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let circuit = if scale >= 1.0 {
        Mcnc::Biomed.circuit()
    } else {
        Mcnc::Biomed.circuit_scaled(scale)
    };
    let cfg = RouterConfig::with_seed(1997);
    let machine = MachineModel::sparc_center_1000();

    let mut comm = Comm::solo(machine);
    let serial = route_serial(&circuit, &cfg, &mut comm);
    let t_serial = comm.now();
    println!(
        "serial baseline on {}: {} tracks, {:.1} s simulated",
        machine.name,
        serial.track_count(),
        t_serial
    );
    println!();
    println!(
        "{:<10} {:>6} {:>10} {:>10} {:>10} {:>12}",
        "algorithm", "procs", "time(s)", "speedup", "tracks", "vs serial"
    );

    for algo in Algorithm::ALL {
        for procs in [2usize, 4, 8] {
            let procs = procs.min(circuit.num_rows());
            let out = route_parallel(
                &circuit,
                &cfg,
                algo,
                PartitionKind::PinWeight,
                procs,
                machine,
            );
            println!(
                "{:<10} {:>6} {:>10.1} {:>10.2} {:>10} {:>11.1}%",
                algo.name(),
                procs,
                out.time,
                t_serial / out.time,
                out.result.track_count(),
                (out.result.scaled_tracks(&serial) - 1.0) * 100.0
            );
        }
        println!();
    }
    println!(
        "row-wise: fastest; hybrid: best quality; net-wise: both poor — the paper's §7 verdict."
    );
}
