//! The strongest correctness property the parallel algorithms have:
//! at one rank, each of them must execute the serial algorithm *exactly*
//! — same spans, same densities, same wirelength, bit for bit — across
//! random circuits, seeds, and feature flags.

use pgr::circuit::{generate, GeneratorConfig};
use pgr::mpi::{Comm, MachineModel};
use pgr::router::{route_parallel, route_serial, Algorithm, PartitionKind, RouterConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn one_rank_is_bit_identical_to_serial(
        circuit_seed in 0u64..10_000,
        router_seed in 0u64..10_000,
        refine in any::<bool>(),
        rows in 3usize..10,
        kind_idx in 0usize..4,
    ) {
        let mut g = GeneratorConfig::small("equiv", circuit_seed);
        g.rows = rows;
        g.cells = rows * 14;
        g.nets = 60;
        g.pins = 200;
        let c = generate(&g);
        let cfg = RouterConfig { seed: router_seed, steiner_refine: refine, ..Default::default() };
        let serial = route_serial(&c, &cfg, &mut Comm::solo(MachineModel::ideal()));
        let kind = PartitionKind::ALL[kind_idx];
        for algo in Algorithm::ALL {
            let out = route_parallel(&c, &cfg, algo, kind, 1, MachineModel::sparc_center_1000());
            prop_assert_eq!(
                &out.result, &serial,
                "{} (refine={}, kind={}) diverged from serial at P=1",
                algo.name(), refine, kind.name()
            );
        }
    }

    #[test]
    fn multi_rank_solutions_always_verify(
        circuit_seed in 0u64..10_000,
        router_seed in 0u64..10_000,
        procs in 2usize..5,
        algo_idx in 0usize..3,
    ) {
        let c = generate(&GeneratorConfig::small("mverify", circuit_seed));
        let cfg = RouterConfig::with_seed(router_seed);
        let algo = Algorithm::ALL[algo_idx];
        let out = route_parallel(&c, &cfg, algo, PartitionKind::PinWeight, procs, MachineModel::sparc_center_1000());
        let violations = pgr::router::verify::verify(&c, &out.result);
        prop_assert!(violations.is_empty(), "{}@{}: {:?}", algo.name(), procs, violations);
        prop_assert!(out.result.track_count() > 0);
    }
}
