//! The strongest correctness property the parallel algorithms have:
//! at one rank, each of them must execute the serial algorithm *exactly*
//! — same spans, same densities, same wirelength, bit for bit — across
//! random circuits, seeds, and feature flags.
//!
//! Randomized but deterministic: inputs are drawn from the workspace's
//! own seeded [`SmallRng`](pgr::geom::rng::SmallRng), so every run
//! exercises the same cases and a failure names its seed.

use pgr::circuit::{generate, GeneratorConfig};
use pgr::geom::rng::rng_from_seed;
use pgr::mpi::{Comm, MachineModel};
use pgr::router::{route_parallel, route_serial, Algorithm, PartitionKind, RouterConfig};

#[test]
fn one_rank_is_bit_identical_to_serial() {
    let mut rng = rng_from_seed(0xE901);
    for case in 0..8 {
        let circuit_seed = rng.gen_range(0u64..10_000);
        let router_seed = rng.gen_range(0u64..10_000);
        let refine = rng.gen_bool(0.5);
        let rows = rng.gen_range(3usize..10);
        let kind = PartitionKind::ALL[rng.gen_range(0usize..4)];

        let mut g = GeneratorConfig::small("equiv", circuit_seed);
        g.rows = rows;
        g.cells = rows * 14;
        g.nets = 60;
        g.pins = 200;
        let c = generate(&g);
        let cfg = RouterConfig {
            seed: router_seed,
            steiner_refine: refine,
            ..Default::default()
        };
        let serial = route_serial(&c, &cfg, &mut Comm::solo(MachineModel::ideal()));
        for algo in Algorithm::ALL {
            let out = route_parallel(&c, &cfg, algo, kind, 1, MachineModel::sparc_center_1000());
            assert_eq!(
                out.result,
                serial,
                "case {case}: {} (refine={refine}, kind={}, circuit_seed={circuit_seed}, \
                 router_seed={router_seed}) diverged from serial at P=1",
                algo.name(),
                kind.name()
            );
        }
    }
}

#[test]
fn multi_rank_solutions_always_verify() {
    let mut rng = rng_from_seed(0xE902);
    for case in 0..8 {
        let circuit_seed = rng.gen_range(0u64..10_000);
        let router_seed = rng.gen_range(0u64..10_000);
        let procs = rng.gen_range(2usize..5);
        let algo = Algorithm::ALL[rng.gen_range(0usize..3)];

        let c = generate(&GeneratorConfig::small("mverify", circuit_seed));
        let cfg = RouterConfig::with_seed(router_seed);
        let out = route_parallel(
            &c,
            &cfg,
            algo,
            PartitionKind::PinWeight,
            procs,
            MachineModel::sparc_center_1000(),
        );
        let violations = pgr::router::verify::verify(&c, &out.result);
        assert!(
            violations.is_empty(),
            "case {case}: {}@{procs} (circuit_seed={circuit_seed}): {violations:?}",
            algo.name()
        );
        assert!(out.result.track_count() > 0);
    }
}
