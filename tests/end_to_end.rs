//! End-to-end integration: the serial pipeline on every benchmark
//! circuit shape, and the P = 1 equivalence of all three parallel
//! algorithms (each must degenerate to the serial algorithm exactly).

use pgr::circuit::mcnc::{Mcnc, ALL};
use pgr::mpi::{Comm, MachineModel};
use pgr::router::{route_parallel, route_serial, Algorithm, PartitionKind, RouterConfig};

const SCALE: f64 = 0.08;

#[test]
fn serial_routes_every_benchmark_shape() {
    for m in ALL {
        let c = m.circuit_scaled(SCALE);
        let r = route_serial(
            &c,
            &RouterConfig::with_seed(1997),
            &mut Comm::solo(MachineModel::ideal()),
        );
        assert_eq!(r.circuit, m.name());
        assert_eq!(r.channel_density.len(), c.num_rows() + 1, "{}", m.name());
        assert!(r.track_count() > 0, "{}", m.name());
        assert!(r.chip_width >= c.width, "{}", m.name());
        assert!(
            r.area() > 0 && r.wirelength > 0 && r.span_count() > 0,
            "{}",
            m.name()
        );
        assert!(r.channel_density.iter().all(|&d| d >= 0), "{}", m.name());
    }
}

#[test]
fn every_algorithm_at_one_rank_is_the_serial_algorithm() {
    for m in [Mcnc::Primary2, Mcnc::Industry3] {
        let c = m.circuit_scaled(SCALE);
        let cfg = RouterConfig::with_seed(7);
        let serial = route_serial(&c, &cfg, &mut Comm::solo(MachineModel::ideal()));
        for algo in Algorithm::ALL {
            let out = route_parallel(
                &c,
                &cfg,
                algo,
                PartitionKind::PinWeight,
                1,
                MachineModel::sparc_center_1000(),
            );
            assert_eq!(out.result, serial, "{} at P=1 on {}", algo.name(), m.name());
        }
    }
}

#[test]
fn serial_virtual_time_scales_with_circuit_size() {
    let small = Mcnc::Primary2.circuit_scaled(0.05);
    let large = Mcnc::Primary2.circuit_scaled(0.15);
    let cfg = RouterConfig::with_seed(1);
    let t = |c: &pgr::circuit::Circuit| {
        let mut comm = Comm::solo(MachineModel::sparc_center_1000());
        route_serial(c, &cfg, &mut comm);
        comm.now()
    };
    assert!(
        t(&large) > 1.5 * t(&small),
        "virtual time grows with problem size"
    );
}

#[test]
fn serial_is_platform_independent_in_results() {
    // Machine models change time and memory, never routing decisions.
    let c = Mcnc::Biomed.circuit_scaled(SCALE);
    let cfg = RouterConfig::with_seed(11);
    let a = route_serial(&c, &cfg, &mut Comm::solo(MachineModel::sparc_center_1000()));
    let b = route_serial(&c, &cfg, &mut Comm::solo(MachineModel::intel_paragon()));
    let i = route_serial(&c, &cfg, &mut Comm::solo(MachineModel::ideal()));
    assert_eq!(a, b);
    assert_eq!(a, i);
}

#[test]
fn parallel_results_are_platform_independent_too() {
    let c = Mcnc::Biomed.circuit_scaled(SCALE);
    let cfg = RouterConfig::with_seed(13);
    for algo in Algorithm::ALL {
        let smp = route_parallel(
            &c,
            &cfg,
            algo,
            PartitionKind::PinWeight,
            3,
            MachineModel::sparc_center_1000(),
        );
        let dmp = route_parallel(
            &c,
            &cfg,
            algo,
            PartitionKind::PinWeight,
            3,
            MachineModel::intel_paragon(),
        );
        assert_eq!(
            smp.result,
            dmp.result,
            "{}: same decisions on both platforms",
            algo.name()
        );
        assert!(
            smp.time != dmp.time,
            "{}: but different simulated times",
            algo.name()
        );
    }
}

#[test]
fn quality_is_stable_across_seeds() {
    // TWGR's selling point: "the solution quality is independent of the
    // routing order of the nets". Different seeds shuffle every random
    // order; track counts must stay within a tight band.
    let c = Mcnc::Primary2.circuit_scaled(SCALE);
    let tracks: Vec<i64> = (0..4)
        .map(|seed| {
            route_serial(
                &c,
                &RouterConfig::with_seed(seed),
                &mut Comm::solo(MachineModel::ideal()),
            )
            .track_count()
        })
        .collect();
    let (lo, hi) = (tracks.iter().min().unwrap(), tracks.iter().max().unwrap());
    assert!(
        *hi as f64 <= *lo as f64 * 1.08,
        "order independence: {tracks:?}"
    );
}

#[test]
fn feedthroughs_grow_the_chip() {
    let c = Mcnc::Industry2.circuit_scaled(SCALE);
    let r = route_serial(
        &c,
        &RouterConfig::with_seed(3),
        &mut Comm::solo(MachineModel::ideal()),
    );
    assert!(r.feedthroughs > 0, "multi-row nets need feedthroughs");
    assert!(r.chip_width > c.width, "feedthrough cells widen rows");
    let growth = (r.chip_width - c.width) as u64;
    // Growth is bounded by the widest row's feedthrough load.
    assert!(
        growth <= r.feedthroughs * 2,
        "growth {growth} vs {} fts",
        r.feedthroughs
    );
}
