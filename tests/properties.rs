//! Cross-crate property-based tests (proptest): the density profile
//! against a naive reference, the segment-split tiling invariant that
//! keeps parallel feedthrough demand identical to serial, netlist format
//! roundtrips, partition coverage, and wire-codec laws.

use pgr::circuit::format::{from_text, to_text};
use pgr::circuit::{generate, GeneratorConfig, NetId, RowId, RowPartition};
use pgr::geom::DensityProfile;
use pgr::mpi::Wire;
use pgr::router::parallel::common::split_segment;
use pgr::router::parallel::partition::{partition_nets, pins_per_owner, PartitionKind};
use pgr::router::route::state::{Node, Segment};
use proptest::prelude::*;

// ---------- density profile vs naive reference ----------

#[derive(Debug, Clone)]
enum ProfileOp {
    Add { lo: i64, hi: i64, delta: i64 },
    QueryMax,
    QueryRange { lo: i64, hi: i64 },
    MaxIfAdded { lo: i64, hi: i64 },
}

fn profile_op(width: i64) -> impl Strategy<Value = ProfileOp> {
    prop_oneof![
        (0..width, 0..width, -3i64..4).prop_map(|(a, b, d)| ProfileOp::Add { lo: a, hi: b, delta: d }),
        Just(ProfileOp::QueryMax),
        (0..width, 0..width).prop_map(|(a, b)| ProfileOp::QueryRange { lo: a, hi: b }),
        (0..width, 0..width).prop_map(|(a, b)| ProfileOp::MaxIfAdded { lo: a, hi: b }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn profile_matches_naive_model(width in 1usize..200, ops in proptest::collection::vec(profile_op(200), 1..80)) {
        let mut profile = DensityProfile::new(width);
        let mut naive = vec![0i64; width];
        for op in ops {
            match op {
                ProfileOp::Add { lo, hi, delta } => {
                    profile.add_span(lo, hi, delta);
                    let (a, b) = if lo <= hi { (lo, hi) } else { (hi, lo) };
                    for col in a.max(0)..=b.min(width as i64 - 1) {
                        naive[col as usize] += delta;
                    }
                }
                ProfileOp::QueryMax => {
                    prop_assert_eq!(profile.max(), *naive.iter().max().unwrap());
                }
                ProfileOp::QueryRange { lo, hi } => {
                    let (a, b) = if lo <= hi { (lo, hi) } else { (hi, lo) };
                    let (a, b) = (a.max(0), b.min(width as i64 - 1));
                    let expect = if a > b { 0 } else { *naive[a as usize..=b as usize].iter().max().unwrap() };
                    prop_assert_eq!(profile.max_in(lo, hi), expect);
                }
                ProfileOp::MaxIfAdded { lo, hi } => {
                    let (a, b) = if lo <= hi { (lo, hi) } else { (hi, lo) };
                    let (a2, b2) = (a.max(0), b.min(width as i64 - 1));
                    let global = *naive.iter().max().unwrap();
                    let expect = if a2 > b2 {
                        global
                    } else {
                        global.max(naive[a2 as usize..=b2 as usize].iter().max().unwrap() + 1)
                    };
                    prop_assert_eq!(profile.max_if_added(lo, hi), expect);
                }
            }
        }
        prop_assert_eq!(profile.counts(), naive);
    }
}

// ---------- segment splitting tiles demand exactly ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn split_pieces_tile_the_original_demand_rows(
        rows in 2usize..40,
        parts_seed in 1usize..8,
        x1 in 0i64..500,
        x2 in 0i64..500,
        r1 in 0u32..40,
        r2 in 0u32..40,
    ) {
        let parts = parts_seed.min(rows);
        let r1 = r1 % rows as u32;
        let r2 = r2 % rows as u32;
        let rp = RowPartition::uniform(rows, parts);
        // Whole-net segment: pin endpoints.
        let seg = Segment::new(
            NetId(0),
            Node::pin(0, x1, r1, pgr::router::route::state::ChannelPref::Either),
            Node::pin(1, x2, r2, pgr::router::route::state::ChannelPref::Either),
        );
        let pieces = split_segment(&seg, &rp);

        // 1. Every piece stays within one part.
        for (p, piece) in &pieces {
            prop_assert_eq!(rp.owner(RowId(piece.lower.row)), *p);
            prop_assert_eq!(rp.owner(RowId(piece.upper.row)), *p);
        }
        // 2. The union of the pieces' demand rows equals the original's
        //    (this is what keeps parallel feedthrough insertion — and so
        //    cell shifting — identical to serial).
        let mut union: Vec<u32> = pieces.iter().flat_map(|(_, s)| s.demand_rows()).collect();
        union.sort_unstable();
        let expect: Vec<u32> = seg.demand_rows().collect();
        prop_assert_eq!(union, expect);
        // 3. Adjacent pieces share the cut column so the boundary hop is
        //    a pure vertical.
        for w in pieces.windows(2) {
            let (_, a) = &w[0];
            let (_, b) = &w[1];
            prop_assert_eq!(a.upper.x, b.lower.x);
            prop_assert_eq!(a.upper.row + 1, b.lower.row);
        }
    }
}

// ---------- netlist format ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn generated_circuits_roundtrip_through_the_text_format(seed in 0u64..1000, rows in 2usize..10) {
        let mut cfg = GeneratorConfig::small("prop", seed);
        cfg.rows = rows;
        cfg.cells = rows * 12;
        cfg.nets = 40;
        cfg.pins = 150;
        let c = generate(&cfg);
        let c2 = from_text(&to_text(&c)).expect("roundtrip parses");
        prop_assert_eq!(c.stats(), c2.stats());
        prop_assert_eq!(to_text(&c), to_text(&c2), "canonical form is a fixed point");
    }
}

// ---------- net partitions ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn partitions_cover_all_nets_and_balance_pins(seed in 0u64..500, parts in 1usize..6) {
        let c = generate(&GeneratorConfig::small("part-prop", seed));
        let parts = parts.min(c.num_rows());
        let rp = RowPartition::balanced(&c, parts);
        for kind in PartitionKind::ALL {
            let owner = partition_nets(&c, kind, &rp, parts, 1.6);
            prop_assert_eq!(owner.len(), c.num_nets());
            prop_assert!(owner.iter().all(|&o| (o as usize) < parts));
            let pins = pins_per_owner(&c, &owner, parts);
            prop_assert_eq!(pins.iter().sum::<usize>(), c.num_pins());
            if parts > 1 {
                let max = *pins.iter().max().unwrap();
                prop_assert!(max * parts <= c.num_pins() * 3, "{}: {:?}", kind.name(), pins);
            }
        }
    }
}

// ---------- wire codec ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn codec_roundtrips_nested_values(v in proptest::collection::vec((any::<u32>(), any::<i64>(), proptest::option::of(any::<bool>())), 0..50)) {
        let bytes = v.to_bytes();
        let back = Vec::<(u32, i64, Option<bool>)>::from_bytes(&bytes).unwrap();
        prop_assert_eq!(v, back);
    }

    #[test]
    fn codec_rejects_any_truncation(v in proptest::collection::vec(any::<u64>(), 1..20), cut in 1usize..8) {
        let bytes = v.to_bytes();
        let cut = cut.min(bytes.len() - 1).max(1);
        let r = Vec::<u64>::from_bytes(&bytes[..bytes.len() - cut]);
        prop_assert!(r.is_err(), "truncated by {cut} must fail");
    }

    #[test]
    fn codec_strings_roundtrip(s in ".{0,64}") {
        let owned = s.to_string();
        prop_assert_eq!(String::from_bytes(&owned.to_bytes()).unwrap(), owned);
    }
}
