//! Cross-crate randomized property tests: the density profile against a
//! naive reference, the segment-split tiling invariant that keeps
//! parallel feedthrough demand identical to serial, netlist format
//! roundtrips, partition coverage, and wire-codec laws. All cases are
//! drawn from the workspace's seeded RNG, so runs are reproducible.

use pgr::circuit::format::{from_text, to_text};
use pgr::circuit::{generate, GeneratorConfig, NetId, RowId, RowPartition};
use pgr::geom::rng::{rng_from_seed, SmallRng};
use pgr::geom::DensityProfile;
use pgr::mpi::Wire;
use pgr::router::parallel::common::split_segment;
use pgr::router::parallel::partition::{partition_nets, pins_per_owner, PartitionKind};
use pgr::router::route::state::{ChannelPref, Node, Segment};

// ---------- density profile vs naive reference ----------

#[derive(Debug, Clone)]
enum ProfileOp {
    Add { lo: i64, hi: i64, delta: i64 },
    QueryMax,
    QueryRange { lo: i64, hi: i64 },
    MaxIfAdded { lo: i64, hi: i64 },
}

fn random_op(rng: &mut SmallRng, width: i64) -> ProfileOp {
    match rng.gen_range(0..4u32) {
        0 => ProfileOp::Add {
            lo: rng.gen_range(0..width),
            hi: rng.gen_range(0..width),
            delta: rng.gen_range(-3i64..4),
        },
        1 => ProfileOp::QueryMax,
        2 => ProfileOp::QueryRange {
            lo: rng.gen_range(0..width),
            hi: rng.gen_range(0..width),
        },
        _ => ProfileOp::MaxIfAdded {
            lo: rng.gen_range(0..width),
            hi: rng.gen_range(0..width),
        },
    }
}

#[test]
fn profile_matches_naive_model() {
    let mut rng = rng_from_seed(0xD301);
    for case in 0..64 {
        let width = rng.gen_range(1usize..200);
        let n_ops = rng.gen_range(1usize..80);
        let mut profile = DensityProfile::new(width);
        let mut naive = vec![0i64; width];
        for _ in 0..n_ops {
            match random_op(&mut rng, 200) {
                ProfileOp::Add { lo, hi, delta } => {
                    profile.add_span(lo, hi, delta);
                    let (a, b) = if lo <= hi { (lo, hi) } else { (hi, lo) };
                    for col in a.max(0)..=b.min(width as i64 - 1) {
                        naive[col as usize] += delta;
                    }
                }
                ProfileOp::QueryMax => {
                    assert_eq!(profile.max(), *naive.iter().max().unwrap(), "case {case}");
                }
                ProfileOp::QueryRange { lo, hi } => {
                    let (a, b) = if lo <= hi { (lo, hi) } else { (hi, lo) };
                    let (a, b) = (a.max(0), b.min(width as i64 - 1));
                    let expect = if a > b {
                        0
                    } else {
                        *naive[a as usize..=b as usize].iter().max().unwrap()
                    };
                    assert_eq!(profile.max_in(lo, hi), expect, "case {case}");
                }
                ProfileOp::MaxIfAdded { lo, hi } => {
                    let (a, b) = if lo <= hi { (lo, hi) } else { (hi, lo) };
                    let (a2, b2) = (a.max(0), b.min(width as i64 - 1));
                    let global = *naive.iter().max().unwrap();
                    let expect = if a2 > b2 {
                        global
                    } else {
                        global.max(naive[a2 as usize..=b2 as usize].iter().max().unwrap() + 1)
                    };
                    assert_eq!(profile.max_if_added(lo, hi), expect, "case {case}");
                }
            }
        }
        assert_eq!(profile.counts(), naive, "case {case}");
    }
}

// ---------- segment splitting tiles demand exactly ----------

#[test]
fn split_pieces_tile_the_original_demand_rows() {
    let mut rng = rng_from_seed(0xD302);
    for case in 0..256 {
        let rows = rng.gen_range(2usize..40);
        let parts = rng.gen_range(1usize..8).min(rows);
        let x1 = rng.gen_range(0i64..500);
        let x2 = rng.gen_range(0i64..500);
        let r1 = rng.gen_range(0u32..40) % rows as u32;
        let r2 = rng.gen_range(0u32..40) % rows as u32;
        let rp = RowPartition::uniform(rows, parts);
        // Whole-net segment: pin endpoints.
        let seg = Segment::new(
            NetId(0),
            Node::pin(0, x1, r1, ChannelPref::Either),
            Node::pin(1, x2, r2, ChannelPref::Either),
        );
        let pieces = split_segment(&seg, &rp);

        // 1. Every piece stays within one part.
        for (p, piece) in &pieces {
            assert_eq!(rp.owner(RowId(piece.lower.row)), *p, "case {case}");
            assert_eq!(rp.owner(RowId(piece.upper.row)), *p, "case {case}");
        }
        // 2. The union of the pieces' demand rows equals the original's
        //    (this is what keeps parallel feedthrough insertion — and so
        //    cell shifting — identical to serial).
        let mut union: Vec<u32> = pieces.iter().flat_map(|(_, s)| s.demand_rows()).collect();
        union.sort_unstable();
        let expect: Vec<u32> = seg.demand_rows().collect();
        assert_eq!(union, expect, "case {case}");
        // 3. Adjacent pieces share the cut column so the boundary hop is
        //    a pure vertical.
        for w in pieces.windows(2) {
            let (_, a) = &w[0];
            let (_, b) = &w[1];
            assert_eq!(a.upper.x, b.lower.x, "case {case}");
            assert_eq!(a.upper.row + 1, b.lower.row, "case {case}");
        }
    }
}

// ---------- netlist format ----------

#[test]
fn generated_circuits_roundtrip_through_the_text_format() {
    let mut rng = rng_from_seed(0xD303);
    for _ in 0..12 {
        let seed = rng.gen_range(0u64..1000);
        let rows = rng.gen_range(2usize..10);
        let mut cfg = GeneratorConfig::small("prop", seed);
        cfg.rows = rows;
        cfg.cells = rows * 12;
        cfg.nets = 40;
        cfg.pins = 150;
        let c = generate(&cfg);
        let c2 = from_text(&to_text(&c)).expect("roundtrip parses");
        assert_eq!(c.stats(), c2.stats());
        assert_eq!(to_text(&c), to_text(&c2), "canonical form is a fixed point");
    }
}

// ---------- net partitions ----------

#[test]
fn partitions_cover_all_nets_and_balance_pins() {
    let mut rng = rng_from_seed(0xD304);
    for _ in 0..12 {
        let seed = rng.gen_range(0u64..500);
        let c = generate(&GeneratorConfig::small("part-prop", seed));
        let parts = rng.gen_range(1usize..6).min(c.num_rows());
        let rp = RowPartition::balanced(&c, parts);
        for kind in PartitionKind::ALL {
            let owner = partition_nets(&c, kind, &rp, parts, 1.6);
            assert_eq!(owner.len(), c.num_nets());
            assert!(owner.iter().all(|&o| (o as usize) < parts));
            let pins = pins_per_owner(&c, &owner, parts);
            assert_eq!(pins.iter().sum::<usize>(), c.num_pins());
            if parts > 1 {
                let max = *pins.iter().max().unwrap();
                assert!(max * parts <= c.num_pins() * 3, "{}: {pins:?}", kind.name());
            }
        }
    }
}

// ---------- wire codec ----------

#[test]
fn codec_roundtrips_nested_values() {
    let mut rng = rng_from_seed(0xD305);
    for _ in 0..128 {
        let len = rng.gen_range(0usize..50);
        let v: Vec<(u32, i64, Option<bool>)> = (0..len)
            .map(|_| {
                let opt = match rng.gen_range(0..3u32) {
                    0 => None,
                    1 => Some(false),
                    _ => Some(true),
                };
                (rng.next_u64() as u32, rng.next_u64() as i64, opt)
            })
            .collect();
        let bytes = v.to_bytes();
        let back = Vec::<(u32, i64, Option<bool>)>::from_bytes(&bytes).unwrap();
        assert_eq!(v, back);
    }
}

#[test]
fn codec_rejects_any_truncation() {
    let mut rng = rng_from_seed(0xD306);
    for _ in 0..128 {
        let len = rng.gen_range(1usize..20);
        let v: Vec<u64> = (0..len).map(|_| rng.next_u64()).collect();
        let bytes = v.to_bytes();
        let cut = rng.gen_range(1usize..8).min(bytes.len() - 1).max(1);
        let r = Vec::<u64>::from_bytes(&bytes[..bytes.len() - cut]);
        assert!(r.is_err(), "truncated by {cut} must fail");
    }
}

#[test]
fn codec_strings_roundtrip() {
    let mut rng = rng_from_seed(0xD307);
    for _ in 0..128 {
        let len = rng.gen_range(0usize..64);
        let s: String = (0..len)
            .map(|_| {
                // Mix ASCII with multi-byte code points to exercise UTF-8.
                match rng.gen_range(0..4u32) {
                    0 => char::from(rng.gen_range(b' '..=b'~')),
                    1 => char::from_u32(rng.gen_range(0xA0u32..0x2FF)).unwrap(),
                    2 => char::from_u32(rng.gen_range(0x4E00u32..0x9FFF)).unwrap(),
                    _ => '\u{1F600}',
                }
            })
            .collect();
        assert_eq!(String::from_bytes(&s.to_bytes()).unwrap(), s);
    }
}
