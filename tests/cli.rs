//! End-to-end tests of the `pgr` command-line tool: generate → stats →
//! route (serial and parallel, with verification, CSV, heatmap, SVG).

use std::process::Command;

fn pgr() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pgr"))
}

fn tmp(name: &str) -> String {
    let dir = std::env::temp_dir().join("pgr-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name).to_string_lossy().into_owned()
}

fn generate_netlist(name: &str) -> String {
    let path = tmp(name);
    let out = pgr()
        .args([
            "generate", "biomed", "--scale", "0.06", "--seed", "3", "-o", &path,
        ])
        .output()
        .expect("run pgr generate");
    assert!(
        out.status.success(),
        "generate failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    path
}

#[test]
fn generate_then_stats() {
    let path = generate_netlist("stats.netlist");
    let out = pgr().args(["stats", &path]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("name           biomed"), "{text}");
    assert!(text.contains("rows"));
    assert!(text.contains("max net degree"));
}

#[test]
fn route_serial_with_verify() {
    let path = generate_netlist("serial.netlist");
    let out = pgr().args(["route", &path, "--verify"]).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("tracks"), "{text}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("solution verified"), "{err}");
}

#[test]
fn route_parallel_csv_is_machine_readable() {
    let path = generate_netlist("par.netlist");
    let out = pgr()
        .args([
            "route",
            &path,
            "--algorithm",
            "hybrid",
            "--procs",
            "3",
            "--csv",
            "--verify",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    let mut lines = text.lines();
    let header = lines.next().unwrap();
    assert_eq!(
        header,
        "circuit,algorithm,procs,tracks,area,wirelength,feedthroughs,spans,sim_seconds"
    );
    let row = lines.next().unwrap();
    let fields: Vec<&str> = row.split(',').collect();
    assert_eq!(fields.len(), 9);
    assert_eq!(fields[0], "biomed");
    assert_eq!(fields[1], "hybrid");
    assert_eq!(fields[2], "3");
    assert!(fields[3].parse::<i64>().unwrap() > 0, "tracks numeric");
}

#[test]
fn route_with_svg_and_heatmap() {
    let path = generate_netlist("plot.netlist");
    let svg_path = tmp("chip.svg");
    let out = pgr()
        .args([
            "route",
            &path,
            "--svg",
            &svg_path,
            "--heatmap",
            "--detailed",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let svg = std::fs::read_to_string(&svg_path).expect("svg written");
    assert!(svg.starts_with("<svg"));
    assert!(svg.contains("</svg>"));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("congestion heatmap"), "{text}");
    assert!(text.contains("detailed (left-edge) routing"), "{text}");
}

#[test]
fn deterministic_across_invocations() {
    let path = generate_netlist("det.netlist");
    let run = || {
        let out = pgr()
            .args(["route", &path, "--csv", "--seed", "9"])
            .output()
            .unwrap();
        assert!(out.status.success());
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    assert_eq!(run(), run());
}

#[test]
fn helpful_errors() {
    let out = pgr().args(["route", "/nonexistent/file"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));

    let out = pgr()
        .args(["generate", "not-a-circuit", "-o", &tmp("x")])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown circuit"));

    let path = generate_netlist("badalgo.netlist");
    let out = pgr()
        .args(["route", &path, "--algorithm", "quantum"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown algorithm"));
}
