//! Degenerate and adversarial circuit shapes: the router must handle
//! them all without panicking and with verifiable solutions.

use pgr::circuit::{generate, CircuitBuilder, GeneratorConfig, PinSide, RowId};
use pgr::mpi::{Comm, MachineModel};
use pgr::router::{route_parallel, route_serial, verify, Algorithm, PartitionKind, RouterConfig};

fn cfg() -> RouterConfig {
    RouterConfig::with_seed(99)
}

#[test]
fn single_row_circuit_routes() {
    // Everything same-row: no feedthroughs, two channels.
    let mut b = CircuitBuilder::new("one-row", 1, 400);
    let mut pins = Vec::new();
    for _ in 0..40 {
        let cell = b.add_cell(RowId(0), 8);
        pins.push(b.add_pin(cell, 2, PinSide::Top, true));
        pins.push(b.add_pin(cell, 5, PinSide::Bottom, false));
    }
    for chunk in pins.chunks(4) {
        b.add_net("n", chunk.to_vec());
    }
    let c = b.finish().unwrap();
    let r = route_serial(&c, &cfg(), &mut Comm::solo(MachineModel::ideal()));
    verify::assert_verified(&c, &r);
    assert_eq!(r.feedthroughs, 0, "same-row nets never cross rows");
    assert_eq!(r.channel_density.len(), 2);
    assert!(r.track_count() > 0);
}

#[test]
fn two_row_circuit_routes_and_parallelizes() {
    let mut cfg_gen = GeneratorConfig::small("two-rows", 5);
    cfg_gen.rows = 2;
    cfg_gen.cells = 60;
    cfg_gen.nets = 40;
    cfg_gen.pins = 120;
    let c = generate(&cfg_gen);
    let serial = route_serial(&c, &cfg(), &mut Comm::solo(MachineModel::ideal()));
    verify::assert_verified(&c, &serial);
    for algo in Algorithm::ALL {
        let out = route_parallel(
            &c,
            &cfg(),
            algo,
            PartitionKind::PinWeight,
            2,
            MachineModel::sparc_center_1000(),
        );
        verify::assert_verified(&c, &out.result);
    }
}

#[test]
fn all_two_pin_nets() {
    let mut g = GeneratorConfig::small("two-pin", 6);
    g.pins = g.nets * 2; // exactly two pins per net
    let c = generate(&g);
    assert!(c.nets().all(|n| n.degree() == 2));
    let r = route_serial(&c, &cfg(), &mut Comm::solo(MachineModel::ideal()));
    verify::assert_verified(&c, &r);
}

#[test]
fn one_giant_net_dominates() {
    // A single net holding a third of all pins.
    let mut g = GeneratorConfig::small("giant", 7);
    g.nets = 80;
    g.pins = 600;
    g.clock_nets = vec![200];
    let c = generate(&g);
    let r = route_serial(&c, &cfg(), &mut Comm::solo(MachineModel::ideal()));
    verify::assert_verified(&c, &r);
    for algo in Algorithm::ALL {
        let out = route_parallel(
            &c,
            &cfg(),
            algo,
            PartitionKind::PinWeight,
            4,
            MachineModel::sparc_center_1000(),
        );
        verify::assert_verified(&c, &out.result);
    }
}

#[test]
fn zero_equivalence_means_no_switchables_but_valid_routing() {
    let mut g = GeneratorConfig::small("rigid", 8);
    g.equivalent_fraction = 0.0;
    let c = generate(&g);
    let r = route_serial(&c, &cfg(), &mut Comm::solo(MachineModel::ideal()));
    verify::assert_verified(&c, &r);
    assert!(r
        .spans
        .iter()
        .all(|s| s.switch_row.is_none() || s.switch_row.is_some()));
    // Feedthrough endpoints still allow switchables; pins never do.
    // The full-equivalence circuit must have at least as many.
    let mut g2 = g.clone();
    g2.name = "flexible".into();
    g2.equivalent_fraction = 1.0;
    let c2 = generate(&g2);
    let r2 = route_serial(&c2, &cfg(), &mut Comm::solo(MachineModel::ideal()));
    let count =
        |r: &pgr::router::RoutingResult| r.spans.iter().filter(|s| s.switch_row.is_some()).count();
    assert!(count(&r2) >= count(&r));
}

#[test]
fn zero_locality_global_nets() {
    let mut g = GeneratorConfig::small("global-nets", 9);
    g.locality = 0.0;
    let c = generate(&g);
    let r = route_serial(&c, &cfg(), &mut Comm::solo(MachineModel::ideal()));
    verify::assert_verified(&c, &r);
    assert!(r.feedthroughs > 0, "global nets must cross rows");
}

#[test]
fn steiner_refinement_verifies_on_every_algorithm() {
    let c = generate(&GeneratorConfig::small("steiner-par", 10));
    let mut rcfg = cfg();
    rcfg.steiner_refine = true;
    let serial = route_serial(&c, &rcfg, &mut Comm::solo(MachineModel::ideal()));
    verify::assert_verified(&c, &serial);
    for algo in Algorithm::ALL {
        let out = route_parallel(
            &c,
            &rcfg,
            algo,
            PartitionKind::PinWeight,
            3,
            MachineModel::sparc_center_1000(),
        );
        verify::assert_verified(&c, &out.result);
        // P=1 equivalence must hold with refinement too.
        let one = route_parallel(
            &c,
            &rcfg,
            algo,
            PartitionKind::PinWeight,
            1,
            MachineModel::sparc_center_1000(),
        );
        assert_eq!(one.result, serial, "{} refined P=1", algo.name());
    }
}

#[test]
fn max_ranks_equals_rows() {
    let mut g = GeneratorConfig::small("tight-ranks", 11);
    g.rows = 6;
    g.cells = 120;
    let c = generate(&g);
    for algo in Algorithm::ALL {
        let out = route_parallel(
            &c,
            &cfg(),
            algo,
            PartitionKind::PinWeight,
            6,
            MachineModel::sparc_center_1000(),
        );
        verify::assert_verified(&c, &out.result);
    }
}

#[test]
fn wide_flat_circuit() {
    // Few rows, very wide: long horizontal spans dominate.
    let mut g = GeneratorConfig::small("flat", 12);
    g.rows = 3;
    g.cells = 600;
    g.nets = 200;
    g.pins = 700;
    let c = generate(&g);
    let r = route_serial(&c, &cfg(), &mut Comm::solo(MachineModel::ideal()));
    verify::assert_verified(&c, &r);
    let d = pgr::router::detailed::route_channels(&r);
    assert!(d.validate());
    assert!(d.track_count() as i64 <= r.track_count());
}

#[test]
fn tall_narrow_circuit() {
    // Many rows, few cells per row: feedthrough-heavy.
    let mut g = GeneratorConfig::small("tall", 13);
    g.rows = 30;
    g.cells = 150;
    g.nets = 90;
    g.pins = 300;
    g.locality = 0.3;
    let c = generate(&g);
    let r = route_serial(&c, &cfg(), &mut Comm::solo(MachineModel::ideal()));
    verify::assert_verified(&c, &r);
    assert!(r.feedthroughs > 0);
    // Heavier feedthrough use per pin than a square circuit.
    assert!(r.chip_width > c.width);
}

#[test]
fn repeated_routing_of_the_same_instance_is_stable() {
    let c = generate(&GeneratorConfig::small("stable", 14));
    let first = route_serial(&c, &cfg(), &mut Comm::solo(MachineModel::ideal()));
    for _ in 0..3 {
        let again = route_serial(&c, &cfg(), &mut Comm::solo(MachineModel::ideal()));
        assert_eq!(again, first);
    }
}
